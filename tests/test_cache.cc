/**
 * @file
 * Processor cache tests, driven through a small Machine so fills,
 * upgrades, evictions and interventions exercise the real protocol.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "machine/report.hh"

namespace flashsim::machine
{
namespace
{

using cpu::Cache;

TEST(CacheTest, ReadMissThenHit)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        co_await env.read(a);
        co_await env.read(a);
        co_await env.read(a + 8); // same line
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_EQ(c.reads, 3u);
    EXPECT_EQ(c.readMisses, 1u);
    EXPECT_EQ(c.state(a), Cache::State::Shared);
}

TEST(CacheTest, WriteMissGrantsExclusive)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        co_await env.write(a);
        co_await env.busy(40000);
        co_await env.write(a); // hit
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_EQ(c.writes, 2u);
    EXPECT_EQ(c.writeMisses, 1u);
    EXPECT_EQ(c.state(a), Cache::State::Exclusive);
    EXPECT_TRUE(c.holdsDirty(a));
}

TEST(CacheTest, UpgradeDoesNotDuplicateLine)
{
    // Regression: a read fill followed by an upgrade fill must promote
    // the existing way instead of installing a second copy.
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        co_await env.read(a);
        co_await env.write(a);
        co_await env.busy(40000);
        co_await env.write(a); // must be a hit on the Exclusive copy
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_EQ(c.state(a), Cache::State::Exclusive);
    EXPECT_EQ(c.writeMisses, 1u);
    EXPECT_EQ(mm.node(0).magic().nacksSent, 0u);
}

TEST(CacheTest, DirtyLineMigratesAndDowngrades)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.write(a); // node 1 dirties the line
        } else {
            co_await env.busy(40000);
            co_await env.read(a); // node 0 reads it back
        }
    });
    mm.drain();
    EXPECT_EQ(mm.node(1).cache().state(a), Cache::State::Shared);
    EXPECT_EQ(mm.node(0).cache().state(a), Cache::State::Shared);
    const auto &dir = mm.node(0).magic().directory();
    EXPECT_FALSE(dir.header(a).dirty);
    EXPECT_TRUE(dir.isSharer(a, 0));
    EXPECT_TRUE(dir.isSharer(a, 1));
}

TEST(CacheTest, WriteInvalidatesOtherSharers)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        co_await env.read(a); // both become sharers
        co_await env.busy(40000);
        if (env.id() == 1)
            co_await env.write(a);
    });
    mm.drain();
    EXPECT_EQ(mm.node(0).cache().state(a), Cache::State::Invalid);
    EXPECT_EQ(mm.node(1).cache().state(a), Cache::State::Exclusive);
    EXPECT_GE(mm.node(0).cache().invalsReceived, 1u);
    const auto &dir = mm.node(0).magic().directory();
    EXPECT_TRUE(dir.header(a).dirty);
    EXPECT_EQ(dir.header(a).owner, 1u);
}

TEST(CacheTest, EvictionsSendWritebacksAndHints)
{
    MachineConfig cfg = MachineConfig::flash(2);
    cfg.cache.sizeBytes = 4096; // 16 sets x 2 ways
    Machine mm(cfg);
    Addr base = mm.alloc(256 * kLineSize, 0);
    mm.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        // Fill far beyond capacity: reads then dirty half of them.
        for (int i = 0; i < 96; ++i)
            co_await env.read(base + static_cast<Addr>(i) * kLineSize);
        for (int i = 96; i < 128; ++i)
            co_await env.write(base + static_cast<Addr>(i) * kLineSize);
        for (int i = 0; i < 96; ++i)
            co_await env.read(base + static_cast<Addr>(i) * kLineSize);
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_GT(c.replaceHints, 0u);
    EXPECT_GT(c.writebacks, 0u);
    // After drain the directory's sharer lists reflect exactly the
    // lines still resident.
    const auto &dir = mm.node(0).magic().directory();
    int resident = 0;
    for (int i = 0; i < 128; ++i) {
        Addr a = base + static_cast<Addr>(i) * kLineSize;
        bool holds = c.state(a) != Cache::State::Invalid;
        bool listed = dir.isSharer(a, 0) ||
                      (dir.header(a).dirty && dir.header(a).owner == 0);
        EXPECT_EQ(holds, listed) << "line " << i;
        resident += holds;
    }
    EXPECT_LE(resident, 32); // capacity
}

TEST(CacheTest, MshrLimitsOutstandingWrites)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr base = mm.alloc(16 * kLineSize, 0);
    mm.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        // 8 back-to-back write misses: only 4 MSHRs, so the pipeline
        // must stall at least once but all must complete.
        for (int i = 0; i < 8; ++i)
            co_await env.write(base + static_cast<Addr>(i) * kLineSize);
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_EQ(c.writeMisses, 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(c.state(base + static_cast<Addr>(i) * kLineSize),
                  Cache::State::Exclusive);
    const auto &bd = mm.node(0).proc().breakdown();
    EXPECT_GT(bd.write, 0u); // MSHR-full stall was charged
}

TEST(CacheTest, NonBlockingWritesDoNotStall)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr base = mm.alloc(16 * kLineSize, 0);
    mm.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        // 3 writes to distinct sets: all fit in MSHRs, no stalls.
        for (int i = 0; i < 3; ++i)
            co_await env.write(base + static_cast<Addr>(i) * kLineSize);
    });
    mm.drain();
    const auto &bd = mm.node(0).proc().breakdown();
    EXPECT_EQ(bd.write, 0u);
    EXPECT_EQ(bd.read, 0u);
}

TEST(CacheTest, ReadMergesIntoOutstandingWrite)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0);
    mm.run([a](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        co_await env.write(a); // non-blocking GETX
        co_await env.read(a);  // merges: blocks until the same fill
    });
    mm.drain();
    const Cache &c = mm.node(0).cache();
    EXPECT_EQ(c.readMisses, 1u);
    EXPECT_EQ(c.writeMisses, 1u);
    // Only one request reached the home node.
    EXPECT_EQ(mm.node(0).magic().readClasses.total() +
                  mm.node(0).magic().handlerCount[static_cast<int>(
                      protocol::HandlerId::ServeWriteMemory)],
              1u);
    EXPECT_EQ(c.state(a), Cache::State::Exclusive);
}

TEST(CacheTest, InterventionCausesCacheContention)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine mm(cfg);
    Addr a = mm.alloc(kLineSize, 0); // homed at 0
    Addr b = mm.alloc(kLineSize, 0);
    mm.run([a, b](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            co_await env.write(a); // dirty at home
            co_await env.busy(40000);
            // While node 1's GET retrieves from our cache, hammer it.
            for (int i = 0; i < 2000; ++i) {
                co_await env.read(b);
                co_await env.busy(1);
            }
        } else {
            co_await env.busy(40020);
            co_await env.read(a); // intervention at node 0
        }
    });
    mm.drain();
    EXPECT_GT(mm.node(0).proc().breakdown().cont, 0u);
}

} // namespace
} // namespace flashsim::machine
