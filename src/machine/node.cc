#include "machine/node.hh"

#include <algorithm>

namespace flashsim::machine
{

Node::Node(EventQueue &eq, NodeId id, const MachineConfig &cfg,
           const protocol::AddressMap &map,
           const protocol::HandlerPrograms *programs,
           network::MeshNetwork &net)
    : id_(id)
{
    magic::MagicHooks hooks;
    hooks.toProcessor = [this](const protocol::Message &m) {
        cache_->deliver(m);
    };
    hooks.toNetwork = [&net](const protocol::Message &m) { net.send(m); };
    hooks.toNetworkAt = [&net](const protocol::Message &m, Tick t) {
        net.sendAt(m, t);
    };
    hooks.cacheHoldsDirty = [this](Addr a) {
        return cache_->holdsDirty(a);
    };
    hooks.cacheInvalidate = [this](Addr a) { cache_->invalidate(a); };
    hooks.cacheDowngrade = [this](Addr a) { cache_->downgrade(a); };
    hooks.cacheBusy = [this](Tick until) { cache_->busyUntil(until); };
    hooks.blockReceived = [this](Addr token) {
        env_->notifyBlockReceived(token);
    };
    hooks.blockAcked = [this](Addr token) {
        env_->notifyBlockAcked(token);
    };
    hooks.fetchOpDone = [this](Addr addr) {
        env_->notifyFetchOpDone(addr);
    };

    magic_ = std::make_unique<magic::Magic>(eq, id, cfg.magic, map,
                                            programs, std::move(hooks));
    cache_ = std::make_unique<cpu::Cache>(eq, id, cfg.cache, *magic_);
    proc_ = std::make_unique<cpu::Processor>(eq, id, *cache_);
    env_ = std::make_unique<tango::Env>(proc_.get(), static_cast<int>(id),
                                        cfg.numProcs);
    env_->blockSender = [this, &eq](NodeId dest, Addr addr,
                                    std::uint32_t bytes, Tick when) {
        eq.scheduleAt(std::max(when, eq.now()), [this, dest, addr,
                                                 bytes] {
            magic_->sendBlock(dest, addr, bytes);
        });
    };
    env_->fetchOpSender = [this, &eq](Addr addr, Tick when) {
        eq.scheduleAt(std::max(when, eq.now()), [this, addr] {
            protocol::Message m;
            m.type = protocol::MsgType::PiFetchOp;
            m.src = id_;
            m.dest = id_;
            m.requester = id_;
            m.addr = lineBase(addr);
            magic_->fromProcessor(m);
        });
    };

    net.connect(id, [this](const protocol::Message &m) {
        magic_->fromNetwork(m);
    });
}

tango::Task
Node::rootTask(std::function<tango::Task(tango::Env &)> workload)
{
    inner_ = workload(*env_);
    co_await inner_;
    proc_->markFinished();
}

void
Node::startWorkload(
    const std::function<tango::Task(tango::Env &)> &workload)
{
    root_ = rootTask(workload);
    root_.start();
}

} // namespace flashsim::machine
