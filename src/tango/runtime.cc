#include "tango/runtime.hh"

namespace flashsim::tango
{

void
MemAwaiter::await_suspend(std::coroutine_handle<> h)
{
    auto resume = [h]() { h.resume(); };
    if (isWrite)
        env->proc().write(addr, env->inSync(), resume);
    else
        env->proc().read(addr, env->inSync(), resume);
}

bool
BusyAwaiter::await_ready() noexcept
{
    env->proc().busy(instrs, env->inSync());
    return true;
}

bool
SyncPointAwaiter::await_ready() const noexcept
{
    if (!env->syncParker)
        return true;
    return env->syncInlineOk(env->proc().cursor());
}

void
SyncPointAwaiter::await_suspend(std::coroutine_handle<> h)
{
    env->syncParker(env->proc().cursor(), h);
}

void
BlockSendAwaiter::await_suspend(std::coroutine_handle<> h)
{
    env->sendWaiter_ = h;
    env->blockSender(dest, addr, bytes, env->proc().cursor());
}

void
BlockSendAwaiter::await_resume() const noexcept
{
    env->proc().absorbExternalWait(env->inSync());
}

bool
BlockRecvAwaiter::await_ready() const noexcept
{
    return !env->arrivedBlocks_.empty();
}

void
BlockRecvAwaiter::await_suspend(std::coroutine_handle<> h)
{
    env->recvWaiter_ = h;
}

Addr
BlockRecvAwaiter::await_resume() const noexcept
{
    env->proc().absorbExternalWait(env->inSync());
    Addr token = env->arrivedBlocks_.front();
    env->arrivedBlocks_.erase(env->arrivedBlocks_.begin());
    return token;
}

void
FetchOpAwaiter::await_suspend(std::coroutine_handle<> h)
{
    env->fetchOpWaiter_ = h;
    env->fetchOpSender(addr, env->proc().cursor());
}

void
FetchOpAwaiter::await_resume() const noexcept
{
    env->proc().absorbExternalWait(env->inSync());
}

void
Env::notifyFetchOpDone(Addr)
{
    if (fetchOpWaiter_) {
        auto h = fetchOpWaiter_;
        fetchOpWaiter_ = nullptr;
        h.resume();
    }
}

void
Env::notifyBlockReceived(Addr token)
{
    arrivedBlocks_.push_back(token);
    if (recvWaiter_) {
        auto h = recvWaiter_;
        recvWaiter_ = nullptr;
        h.resume();
    }
}

void
Env::notifyBlockAcked(Addr)
{
    if (sendWaiter_) {
        auto h = sendWaiter_;
        sendWaiter_ = nullptr;
        h.resume();
    }
}

// Every access to the shared host-side variables (LockVar, BarrierVar)
// below sits behind a syncPoint(): the decision logic runs inside the
// machine's canonical sync phase, in (tick, node, sequence) order, so
// races on the *host* state resolve identically however the run is
// sharded. The simulated traffic (reads, writes, fetch&ops) is
// untouched — syncPoint costs zero simulated time.

Task
Env::lockAcquire(LockVar &l)
{
    SyncRegion region(*this);
    while (true) {
        // Test: spin on a (usually cached) read of the lock line.
        co_await read(l.addr);
        co_await syncPoint();
        if (!l.held) {
            // Test-and-set: gain exclusive ownership, then check that no
            // other processor won the race while our GETX was in flight.
            co_await write(l.addr);
            co_await syncPoint();
            if (!l.held) {
                l.held = true;
                ++l.acquisitions;
                co_return;
            }
        }
        co_await busy(32); // backoff before re-testing
    }
}

Task
Env::lockRelease(LockVar &l)
{
    SyncRegion region(*this);
    co_await syncPoint();
    l.held = false;
    co_await write(l.addr);
}

Task
Env::barrier(BarrierVar &b)
{
    SyncRegion region(*this);
    co_await syncPoint();
    ++b.episodes;
    const int my_gen = b.gen;
    BarrierVar::Group &g =
        b.groups[static_cast<std::size_t>(id() / BarrierVar::kArity)];

    // Arrival: fetch&increment on the group's count line — via cached
    // exclusive ownership (the default) or MAGIC's uncached fetch&op.
    if (b.useFetchOp) {
        co_await fetchOp(g.countAddr);
    } else {
        co_await read(g.countAddr);
        co_await write(g.countAddr);
    }
    co_await syncPoint();
    ++g.count;

    if (g.count == g.size) {
        // Last in the group: combine at the root.
        g.count = 0;
        if (b.useFetchOp) {
            co_await fetchOp(b.rootCountAddr);
        } else {
            co_await read(b.rootCountAddr);
            co_await write(b.rootCountAddr);
        }
        co_await syncPoint();
        ++b.rootCount;
        if (b.rootCount == static_cast<int>(b.groups.size())) {
            // Global last arrival: release every group.
            b.rootCount = 0;
            ++b.gen;
            for (BarrierVar::Group &rg : b.groups)
                co_await write(rg.flagAddr);
            co_return;
        }
    }
    while (true) {
        co_await syncPoint();
        if (b.gen != my_gen)
            break;
        co_await busy(16); // spin backoff
        co_await read(g.flagAddr);
    }
}

} // namespace flashsim::tango
