/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * The paper's FlashLite simulator was multi-threaded; our reproduction
 * keeps each simulated machine single-threaded and deterministic, but
 * experiment *sweeps* — Table 3.3's ten probe runs, the Figure 4.1-4.3
 * multi-workload comparisons, cache-size sweeps — are embarrassingly
 * parallel: every job owns its own Machine, EventQueue and statistics.
 *
 * SweepRunner shards such jobs across a work-stealing thread pool and
 * returns results indexed by submission order, so a sweep's output is
 * bit-identical whether it runs on 1 worker or N. Jobs must be
 * independent (no shared mutable state); each job's simulation is
 * internally deterministic, so parallelism only changes wall-clock
 * time, never results.
 *
 * The worker count comes from (in priority order) the explicit
 * constructor argument, the FLASHSIM_JOBS environment variable, and
 * std::thread::hardware_concurrency().
 */

#ifndef FLASHSIM_SIM_SWEEP_HH_
#define FLASHSIM_SIM_SWEEP_HH_

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace flashsim::sim
{

/**
 * A sweep job threw: wraps the original error with the failing job's
 * submission index, so the caller can report exactly which config died
 * (a 200-point sweep losing one job to an unattributed exception is
 * undebuggable). When several jobs fail, the one with the smallest
 * index is surfaced — deterministic regardless of worker scheduling.
 */
class SweepJobError : public std::runtime_error
{
  public:
    SweepJobError(std::size_t job, const std::string &message)
        : std::runtime_error("sweep job " + std::to_string(job) + ": " +
                             message),
          job_(job), message_(message)
    {}

    /** Submission index of the job that threw. */
    std::size_t jobIndex() const { return job_; }
    /** The original exception's message. */
    const std::string &jobMessage() const { return message_; }

  private:
    std::size_t job_;
    std::string message_;
};

/** Per-job measurement recorded by the sweep runner. */
struct JobMetrics
{
    double wallSeconds = 0.0; ///< wall-clock time of the job body
    int worker = -1;          ///< index of the worker that ran the job
};

/** Aggregate metrics of one SweepRunner::run() call. */
struct SweepMetrics
{
    double wallSeconds = 0.0;   ///< whole-sweep wall-clock time
    double serialSeconds = 0.0; ///< sum of the per-job wall-clock times
    int workers = 0;            ///< workers actually used
    std::vector<JobMetrics> jobs; ///< indexed by submission order

    /** Effective speedup over running the same jobs back to back. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? serialSeconds / wallSeconds : 0.0;
    }

    /** Jobs completed per wall-clock second. */
    double
    jobsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(jobs.size()) / wallSeconds
                   : 0.0;
    }
};

/**
 * Resolve a worker count: @p requested if positive, else the
 * FLASHSIM_JOBS environment variable if set and valid, else
 * hardware_concurrency() (minimum 1).
 */
int resolveWorkers(int requested = 0);

/**
 * Work-stealing pool for independent simulation jobs.
 *
 * Jobs are pre-distributed round-robin across per-worker deques; a
 * worker pops from the front of its own deque and steals from the back
 * of others when it runs dry. Results land in a vector indexed by
 * submission order, so output ordering (and therefore any report built
 * from it) is identical to serial execution.
 */
class SweepRunner
{
  public:
    /** @p workers 0 means auto (FLASHSIM_JOBS or hardware). */
    explicit SweepRunner(int workers = 0)
        : workers_(resolveWorkers(workers))
    {}

    int workers() const { return workers_; }

    /**
     * Execute @p count jobs, calling @p body(i) for each index exactly
     * once. Blocks until all jobs finish. A throwing job surfaces here
     * as SweepJobError carrying the job's index (smallest index wins
     * when several fail); the remaining jobs still run to completion.
     */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &body);

    /**
     * Execute all @p jobs and return their results in submission order.
     * T must be default-constructible and move-assignable.
     */
    template <typename T>
    std::vector<T>
    run(std::vector<std::function<T()>> jobs)
    {
        std::vector<T> results(jobs.size());
        runIndexed(jobs.size(),
                   [&](std::size_t i) { results[i] = jobs[i](); });
        return results;
    }

    /** Metrics of the most recent run()/runIndexed() call. */
    const SweepMetrics &lastMetrics() const { return metrics_; }

  private:
    int workers_;
    SweepMetrics metrics_;
};

} // namespace flashsim::sim

#endif // FLASHSIM_SIM_SWEEP_HH_
