/**
 * @file
 * Reproduces Table 3.4 ("PP Occupancies for Common Operations"): runs
 * each handler on PPsim in a directed directory state and prints its
 * measured occupancy next to the paper's number. Also reports the
 * per-invalidation and per-list-node costs for the parameterized rows.
 */

#include <cstdio>
#include <functional>

#include "magic/timing_model.hh"
#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/pp_programs.hh"

using namespace flashsim;
using namespace flashsim::protocol;
using namespace flashsim::magic;

namespace
{

constexpr flashsim::Addr kLine = 0x2000;

struct Ctx
{
    HandlerPrograms programs = buildHandlerPrograms();
    MagicParams params;

    /** Measure a handler's warm occupancy for a given directory setup. */
    double
    measure(const Message &m, NodeId home, bool cache_dirty,
            HandlerId id,
            const std::function<void(DirectoryStore &)> &setup)
    {
        Cycles out = 0;
        // Two passes: the first warms the MIC and MDC, the second is
        // the steady-state cost Table 3.4 reports.
        DirectoryStore warm_dir;
        PpTimingModel model(programs, warm_dir, params);
        for (int pass = 0; pass < 2; ++pass) {
            warm_dir = DirectoryStore();
            // Rebuilding the store invalidates nothing in the MDC (the
            // addresses repeat), which is exactly what we want.
            setup(warm_dir);
            PpTimingModel *mp = &model;
            mp->preHandler(m, 0, home, cache_dirty);
            HandlerResult res;
            res.id = id;
            res.cacheRetrieve = id == HandlerId::RetrieveFromCache;
            out = mp->occupancy(m, res).occupancy;
        }
        return static_cast<double>(out);
    }
};

Message
msg(MsgType t, NodeId src, Addr addr, NodeId req, std::uint32_t aux = 0)
{
    Message m;
    m.type = t;
    m.src = src;
    m.dest = 0;
    m.requester = req;
    m.addr = addr;
    m.aux = aux;
    return m;
}

} // namespace

int
main()
{
    Ctx ctx;
    auto nop_setup = [](DirectoryStore &) {};

    std::printf("Table 3.4: PP occupancies for common operations "
                "(10 ns cycles)\n");
    std::printf("%-44s %6s %9s\n", "operation", "paper", "measured");

    auto row = [&](const char *name, double paper, double measured) {
        std::printf("%-44s %6.0f %9.0f\n", name, paper, measured);
    };

    row("Service read miss from main memory", 11,
        ctx.measure(msg(MsgType::NetGet, 2, kLine, 2), 0, false,
                    HandlerId::ServeReadMemory, nop_setup));

    // Write miss: base (no sharers) plus per-invalidation increments.
    auto getx_with = [&](int sharers) {
        return ctx.measure(msg(MsgType::NetGetx, 2, kLine, 2), 0, false,
                           HandlerId::ServeWriteMemory,
                           [sharers](DirectoryStore &d) {
                               for (int i = 0; i < sharers; ++i)
                                   d.addSharer(kLine,
                                               static_cast<NodeId>(i + 4));
                           });
    };
    double w0 = getx_with(0);
    double w1 = getx_with(1);
    double w4 = getx_with(4);
    row("Service write miss from main memory", 14, w0);
    row("  ... per invalidation (paper: 10 to 15)", 12.5,
        (w4 - w1) / 3.0);

    row("Forward request to home node", 3,
        ctx.measure(msg(MsgType::PiGet, 0, 0x1000, 0), 1, false,
                    HandlerId::FwdToHome, nop_setup));

    row("Forward request from home to dirty node", 18,
        ctx.measure(msg(MsgType::NetGet, 2, kLine, 2), 0, false,
                    HandlerId::FwdHomeToDirty, [](DirectoryStore &d) {
                        DirHeader h = d.header(kLine);
                        h.dirty = true;
                        h.owner = 3;
                        d.setHeader(kLine, h);
                    }));

    row("Retrieve data from processor cache", 38,
        ctx.measure(msg(MsgType::NetFwdGet, 1, 0x1000, 2), 1, true,
                    HandlerId::RetrieveFromCache, nop_setup));

    row("Forward reply from network to processor", 2,
        ctx.measure(msg(MsgType::NetPut, 1, 0x1000, 0), 1, false,
                    HandlerId::ReplyToProc, nop_setup));

    row("Local writeback", 10,
        ctx.measure(msg(MsgType::PiWriteback, 0, kLine, 0), 0, false,
                    HandlerId::LocalWriteback, [](DirectoryStore &d) {
                        DirHeader h = d.header(kLine);
                        h.dirty = true;
                        h.owner = 0;
                        d.setHeader(kLine, h);
                    }));

    row("Local replacement hint", 7,
        ctx.measure(msg(MsgType::PiReplaceHint, 0, kLine, 0), 0, false,
                    HandlerId::LocalHint, [](DirectoryStore &d) {
                        d.addSharer(kLine, 0);
                    }));

    row("Writeback from a remote processor", 8,
        ctx.measure(msg(MsgType::NetWriteback, 2, kLine, 2), 0, false,
                    HandlerId::RemoteWriteback, [](DirectoryStore &d) {
                        DirHeader h = d.header(kLine);
                        h.dirty = true;
                        h.owner = 2;
                        d.setHeader(kLine, h);
                    }));

    // Replacement hints: only node, and Nth node on the list.
    auto hint_nth = [&](int n_ahead) {
        return ctx.measure(
            msg(MsgType::NetReplaceHint, 9, kLine, 9), 0, false,
            n_ahead ? HandlerId::RemoteHintNth : HandlerId::RemoteHintOnly,
            [n_ahead](DirectoryStore &d) {
                d.addSharer(kLine, 9);
                for (int i = 0; i < n_ahead; ++i)
                    d.addSharer(kLine, static_cast<NodeId>(i + 1));
            });
    };
    double h0 = hint_nth(0);
    double h1 = hint_nth(1);
    double h5 = hint_nth(5);
    row("Replacement hint, only node on list", 17, h0);
    row("Replacement hint, Nth node: base", 23, h1 - (h5 - h1) / 4.0);
    row("  ... per list node (paper: 14)", 14, (h5 - h1) / 4.0);

    std::printf("\nHandler code: %zu bytes total (paper: ~14.8 KB for "
                "the full protocol; MIC is 32 KB)\n",
                ctx.programs.totalCodeBytes());
    return 0;
}
