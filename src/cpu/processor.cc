#include "cpu/processor.hh"

#include "sim/logging.hh"

namespace flashsim::cpu
{

void
Processor::busy(std::uint64_t instrs, bool in_sync)
{
    instrCarry_ += instrs;
    Tick cycles = instrCarry_ / kIssueWidth;
    instrCarry_ %= kIssueWidth;
    cursor_ += cycles;
    if (in_sync)
        bd_.sync += cycles;
    else
        bd_.busy += cycles;
    // Roughly one in three instructions is a memory reference; compute
    // phases touch registers and primary-cache-resident data, so these
    // references hit and only enter the miss-rate denominator.
    bgRefCarry_ += instrs;
    cache_.backgroundHits += bgRefCarry_ / 3;
    bgRefCarry_ %= 3;
}

Tick
Processor::absorbContention()
{
    Tick free_at = cache_.freeAt();
    if (free_at <= cursor_)
        return 0;
    Tick wait = free_at - cursor_;
    cursor_ = free_at;
    bd_.cont += wait;
    return wait;
}

void
Processor::chargeStall(Tick cycles, bool in_sync, Tick Breakdown::*slot)
{
    if (in_sync)
        bd_.sync += cycles;
    else
        bd_.*slot += cycles;
}

void
Processor::read(Addr addr, bool in_sync, Callback done)
{
    busy(1, in_sync); // the load instruction itself
    eq_.scheduleAt(cursor_, [this, addr, in_sync,
                             done = std::move(done)]() mutable {
        absorbContention();
        attemptRead(addr, in_sync, cursor_, std::move(done));
    });
}

void
Processor::attemptRead(Addr addr, bool in_sync, Tick stall_start,
                       Callback done)
{
    Cache::ReadOutcome out =
        cache_.read(addr, [this, in_sync, stall_start, done]() {
            // First 8 bytes delivered (critical word first).
            if (cache_.completingDegraded())
                ++degradedResumes;
            cursor_ = eq_.now();
            chargeStall(cursor_ - stall_start, in_sync,
                        &Breakdown::read);
            done();
        });
    switch (out) {
      case Cache::ReadOutcome::Hit:
        chargeStall(cursor_ - stall_start, in_sync, &Breakdown::read);
        done();
        return;
      case Cache::ReadOutcome::Miss:
        return; // the fill callback resumes the processor
      case Cache::ReadOutcome::MshrFull:
        cache_.onMshrFree([this, addr, in_sync, stall_start,
                           done = std::move(done)]() mutable {
            cursor_ = eq_.now();
            absorbContention();
            attemptRead(addr, in_sync, stall_start, std::move(done));
        });
        return;
    }
}

void
Processor::write(Addr addr, bool in_sync, Callback done)
{
    busy(1, in_sync); // the store instruction itself
    eq_.scheduleAt(cursor_, [this, addr, in_sync,
                             done = std::move(done)]() mutable {
        absorbContention();
        attemptWrite(addr, in_sync, cursor_, std::move(done));
    });
}

void
Processor::attemptWrite(Addr addr, bool in_sync, Tick stall_start,
                        Callback done)
{
    Cache::WriteOutcome out = cache_.write(addr);
    switch (out) {
      case Cache::WriteOutcome::Done:
      case Cache::WriteOutcome::Queued:
        chargeStall(cursor_ - stall_start, in_sync, &Breakdown::write);
        done();
        return;
      case Cache::WriteOutcome::Conflict:
      case Cache::WriteOutcome::MshrFull:
        cache_.onMshrFree([this, addr, in_sync, stall_start,
                           done = std::move(done)]() mutable {
            cursor_ = eq_.now();
            absorbContention();
            attemptWrite(addr, in_sync, stall_start, std::move(done));
        });
        return;
    }
}

void
Processor::absorbExternalWait(bool in_sync)
{
    Tick now = eq_.now();
    if (now <= cursor_)
        return;
    chargeStall(now - cursor_, in_sync, &Breakdown::read);
    cursor_ = now;
}

void
Processor::markFinished()
{
    if (finished_)
        panic("Processor %u finished twice", self_);
    finished_ = true;
    finishTime_ = cursor_;
}

} // namespace flashsim::cpu
