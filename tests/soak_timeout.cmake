# Included by CTest after gtest test discovery (TEST_INCLUDE_FILES):
# raise the ceiling for the soak sweep, which deliberately runs 24
# injected full-machine simulations, and for the worker-count
# determinism check that runs several more. All other tests keep the
# default 120 s TIMEOUT set on gtest_discover_tests.
set_tests_properties(SoakTest.MultiSeedInjectionSweepIsOracleClean
                     PROPERTIES TIMEOUT 900)
set_tests_properties(
    SoakTest.InjectionSweepIsDeterministicAcrossWorkerCounts
    PROPERTIES TIMEOUT 600)
