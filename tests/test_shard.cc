/**
 * @file
 * Sharded-run determinism suite: the conservative time-window PDES
 * path (cfg.shards > 1, see sim/shard.hh) must be *bit-identical* to
 * the single-threaded run for the same configuration and seed. The
 * single-threaded path is the conformance oracle: every test runs the
 * same workload at 1, 2 and 4 shards and compares a full-fat signature
 * — the complete report Summary, mesh counters, sentinel verdicts,
 * injector draw counts and the post-mortem trace ring — for string
 * equality. Coverage spans clean runs, seeded fault-injection runs
 * (the injector's per-node streams must survive the node partition),
 * and a host-side lock/barrier torture loop whose winner order is the
 * single hardest thing to keep deterministic across threads.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/fft.hh"
#include "apps/mp3d.hh"
#include "apps/radix.hh"
#include "apps/workload.hh"
#include "machine/machine.hh"
#include "machine/report.hh"
#include "sim/shard.hh"

namespace flashsim::apps
{
namespace
{

using machine::Machine;
using machine::MachineConfig;

std::unique_ptr<Workload>
makeShardWorkload(int which)
{
    switch (which) {
      case 0: {
          FftParams p;
          p.logN = 8;
          return std::make_unique<Fft>(p);
      }
      case 1: {
          Mp3dParams p;
          p.particles = 2000;
          p.steps = 3;
          p.cells = 512;
          return std::make_unique<Mp3d>(p);
      }
      default: {
          RadixParams p;
          p.keys = 1 << 11;
          return std::make_unique<Radix>(p);
      }
    }
}

/** Small caches + verification on; @p fault_seed 0 means no injection. */
MachineConfig
shardConfig(int shards, std::uint64_t fault_seed)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    if (fault_seed != 0) {
        cfg.magic.verify.fault.enabled = true;
        cfg.magic.verify.fault.seed = fault_seed;
        cfg.magic.verify.fault.meshJitter = 10;
        cfg.magic.verify.fault.extraNackProb = 0.05;
        cfg.magic.verify.fault.dropHintProb = 0.05;
        cfg.magic.verify.fault.dupHintProb = 0.05;
        cfg.magic.verify.fault.inboundStall = 4;
    }
    return cfg;
}

/**
 * Everything observable about a finished run, serialized. The
 * post-mortem is compared from its "recent activity" trace ring on:
 * the header's "t=" is the main queue's final local time, which is a
 * per-shard notion, not machine state.
 */
std::string
signature(Machine &m)
{
    const machine::Summary s = machine::summarize(m);
    std::ostringstream os;
    os.precision(17);
    os << s.execTime << '|' << s.busy << '|' << s.cont << '|' << s.read
       << '|' << s.write << '|' << s.sync << '|' << s.missRate << '|'
       << s.dist.localClean << '|' << s.dist.localDirtyRemote << '|'
       << s.dist.remoteClean << '|' << s.dist.remoteDirtyHome << '|'
       << s.dist.remoteDirtyRemote << '|' << s.avgMemOcc << '|'
       << s.maxMemOcc << '|' << s.avgPpOcc << '|' << s.maxPpOcc << '|'
       << s.cacheReads << '|' << s.cacheWrites << '|'
       << s.backgroundRefs << '|' << s.readMisses << '|'
       << s.writeMisses << '|' << s.handlerInvocations << '|'
       << s.specIssued << '|' << s.specUselessFrac << '|'
       << s.mdcMissRate << '|' << s.mdcProtocolMemOps << '|'
       << s.nacksSent << '|' << m.network().messages() << '|'
       << m.network().dataMessages() << '|';
    if (const verify::Sentinel *sent = m.sentinel()) {
        os << sent->violations() << '|' << sent->trips() << '|'
           << sent->watchdog()->retired() << '|'
           << sent->oracle()->trackedLines() << '|'
           << sent->injectorStats().nacksInjected() << '|'
           << sent->injectorStats().hintsDropped() << '|'
           << sent->injectorStats().hintsDuped() << '|'
           << sent->injectorStats().jitterCycles() << '|'
           << sent->injectorStats().stallCycles() << '|';
        std::ostringstream pm;
        sent->writePostMortem(pm, "signature");
        const std::string text = pm.str();
        const std::size_t at = text.find("recent activity");
        os << (at == std::string::npos ? text : text.substr(at));
    }
    return os.str();
}

std::string
runSignature(int shards, int workload, std::uint64_t fault_seed)
{
    auto w = makeShardWorkload(workload);
    auto m = runWorkload(shardConfig(shards, fault_seed), *w);
    EXPECT_EQ(m->shards(), shards);
    EXPECT_EQ(m->sentinel()->violations(), 0u);
    EXPECT_EQ(m->sentinel()->trips(), 0u);
    return signature(*m);
}

TEST(ShardTest, ResolveShardsClamps)
{
    EXPECT_EQ(resolveShards(0, 16), 1);
    EXPECT_EQ(resolveShards(1, 16), 1);
    EXPECT_EQ(resolveShards(-3, 16), 1);
    EXPECT_EQ(resolveShards(4, 16), 4);
    EXPECT_EQ(resolveShards(8, 4), 4);
    EXPECT_EQ(resolveShards(200, 256), kMaxShards);

    MachineConfig cfg = MachineConfig::flash(4);
    cfg.shards = 5;
    Machine m(cfg);
    EXPECT_EQ(m.shards(), 4);
    EXPECT_GT(m.lookahead(), 0u);
}

TEST(ShardTest, CleanRunsBitIdenticalAcrossShardCounts)
{
    for (int w = 0; w < 3; ++w) {
        SCOPED_TRACE("workload " + std::to_string(w));
        const std::string base = runSignature(1, w, 0);
        EXPECT_EQ(runSignature(2, w, 0), base);
        EXPECT_EQ(runSignature(4, w, 0), base);
    }
}

TEST(ShardTest, InjectedRunsBitIdenticalAcrossShardCounts)
{
    const std::uint64_t seeds[] = {3, 7, 11, 23};
    for (int w = 0; w < 3; ++w) {
        for (std::uint64_t seed : seeds) {
            SCOPED_TRACE("workload " + std::to_string(w) + " seed " +
                         std::to_string(seed));
            const std::string base = runSignature(1, w, seed);
            EXPECT_EQ(runSignature(2, w, seed), base);
            EXPECT_EQ(runSignature(4, w, seed), base);
        }
    }
}

TEST(ShardTest, FaultInjectionActuallyPerturbsShardedRun)
{
    // The determinism tests above prove sharded == single; this proves
    // they are comparing a genuinely perturbed machine, not one whose
    // injector went quiet under the node partition.
    auto w = makeShardWorkload(0);
    auto m = runWorkload(shardConfig(4, 7), *w);
    const verify::Sentinel *sent = m->sentinel();
    EXPECT_EQ(sent->violations(), 0u);
    EXPECT_EQ(sent->trips(), 0u);
    EXPECT_GT(sent->injectorStats().nacksInjected() +
                  sent->injectorStats().hintsDropped() +
                  sent->injectorStats().hintsDuped() +
                  sent->injectorStats().jitterCycles() +
                  sent->injectorStats().stallCycles(),
              0u);
}

/**
 * Host-side synchronization torture: contended locks interleaved with
 * barrier episodes, with the critical section recording the exact
 * acquisition order. Lock winner order is where naive sharding
 * diverges first (it would depend on thread timing); the SyncArbiter
 * must reproduce the single-threaded order exactly.
 */
struct TortureResult
{
    std::vector<int> order;
    std::uint64_t acquisitions = 0;
    int generations = 0;
    std::uint64_t counter = 0;
    Tick execTime = 0;

    bool
    operator==(const TortureResult &o) const
    {
        return order == o.order && acquisitions == o.acquisitions &&
               generations == o.generations && counter == o.counter &&
               execTime == o.execTime;
    }
};

TortureResult
runTorture(int shards)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    Machine m(cfg);
    auto lock = std::make_shared<tango::LockVar>(m.makeLock(3));
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    auto order = std::make_shared<std::vector<int>>();
    auto counter = std::make_shared<std::uint64_t>(0);
    const Tick t = m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int round = 0; round < 6; ++round) {
            // Skew arrival so different processors reach the lock
            // first in different rounds.
            co_await env.busy(37 * static_cast<std::uint64_t>(
                                       (env.id() + round) % 8));
            co_await env.lockAcquire(*lock);
            order->push_back(env.id());
            *counter += static_cast<std::uint64_t>(env.id()) + 1;
            co_await env.busy(25);
            co_await env.lockRelease(*lock);
            co_await env.barrier(*bar);
        }
    });
    m.drain();
    TortureResult r;
    r.order = *order;
    r.acquisitions = lock->acquisitions;
    r.generations = bar->gen;
    r.counter = *counter;
    r.execTime = t;
    return r;
}

TEST(ShardTest, LockAndBarrierTortureBitIdenticalAcrossShardCounts)
{
    const TortureResult base = runTorture(1);
    ASSERT_EQ(base.order.size(), 48u);
    EXPECT_EQ(base.acquisitions, 48u);
    EXPECT_EQ(base.generations, 6);
    EXPECT_TRUE(runTorture(2) == base);
    EXPECT_TRUE(runTorture(4) == base);
}

} // namespace
} // namespace flashsim::apps
