/**
 * @file
 * Recoverable-fault transport suite.
 *
 * The wire plane (lossy-mesh mode) must be *timing-invariant*: a run
 * with drops, duplicates and reorders injected into the wire shadow
 * recovers every loss through acked retransmission, and its final
 * caches, directory and statistics are bit-identical to the clean
 * same-seed run — at 1, 2 and 4 shards, with the oracle watching and
 * zero watchdog trips. Transaction-level loss (requests killed at the
 * home NI) is the genuinely timing-perturbing fault class: those tests
 * assert recovery and coherence, not bit-identity, plus the graceful
 * degradation path when the retry budget runs out.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/machine.hh"
#include "machine/report.hh"
#include "network/mesh.hh"
#include "sim/stats.hh"

namespace flashsim::machine
{
namespace
{

/** Verification-on, record-only config with the injector armed (seeded)
 *  but every knob at zero; wire/commit faults layer on top. */
MachineConfig
transportConfig(int procs, std::uint64_t seed)
{
    MachineConfig cfg = MachineConfig::flash(procs);
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    cfg.magic.verify.traceDepth = 8;
    cfg.magic.verify.fault.enabled = true;
    cfg.magic.verify.fault.seed = seed;
    return cfg;
}

void
addWireLoss(MachineConfig &cfg)
{
    cfg.magic.verify.fault.wireDropProb = 0.05;
    cfg.magic.verify.fault.wireDupProb = 0.03;
    cfg.magic.verify.fault.wireReorderProb = 0.03;
}

void
addCommitFaults(MachineConfig &cfg)
{
    cfg.magic.verify.fault.meshJitter = 12;
    cfg.magic.verify.fault.extraNackProb = 0.15;
    cfg.magic.verify.fault.dropHintProb = 0.1;
    cfg.magic.verify.fault.dupHintProb = 0.1;
    cfg.magic.verify.fault.inboundStall = 6;
}

/** All nodes hammer a shared region: sharing, invalidations, 3-hop
 *  transfers — enough cross-node traffic to exercise every lane. */
void
runContention(Machine &m, Addr base, int iters = 4)
{
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i) {
                Addr a = base +
                         static_cast<Addr>((i * 7 + env.id() * 13) % 64) *
                             kLineSize;
                if ((i + it + env.id()) % 3 == 0)
                    co_await env.write(a);
                else
                    co_await env.read(a);
            }
        }
    });
    m.drain();
}

Addr
allocSpread(Machine &m)
{
    Addr base = m.alloc(16 * kLineSize, 0);
    for (int n = 1; n < m.numProcs(); ++n)
        m.alloc(16 * kLineSize, static_cast<NodeId>(n % m.numProcs()));
    return base;
}

/** Commit-plane fingerprint: final architectural state + every counter
 *  the protocol layer can see. Wire-plane counters are deliberately
 *  excluded — they differ between clean and lossy runs by design. */
struct CommitDigest
{
    std::uint64_t state = 0;
    Tick execTime = 0;
    std::string stats;

    bool
    operator==(const CommitDigest &o) const
    {
        return state == o.state && execTime == o.execTime &&
               stats == o.stats;
    }
};

CommitDigest
commitDigest(Machine &m)
{
    Summary s = summarize(m);
    CommitDigest d;
    d.state = m.stateDigest();
    d.execTime = m.executionTime();
    std::ostringstream os;
    os.precision(17);
    os << s.busy << '|' << s.read << '|' << s.write << '|' << s.sync
       << '|' << s.missRate << '|' << s.cacheReads << '|'
       << s.cacheWrites << '|' << s.readMisses << '|' << s.writeMisses
       << '|' << s.handlerInvocations << '|' << s.nacksSent << '|'
       << m.network().messages() << '|' << m.network().dataMessages()
       << '|';
    if (const verify::Sentinel *sent = m.sentinel())
        os << sent->violations() << '|' << sent->trips() << '|'
           << sent->injectorStats().nacksInjected() << '|'
           << sent->injectorStats().hintsDropped() << '|'
           << sent->injectorStats().hintsDuped() << '|'
           << sent->injectorStats().jitterCycles() << '|'
           << sent->injectorStats().stallCycles();
    d.stats = os.str();
    return d;
}

struct LossyRun
{
    CommitDigest digest;
    network::MeshNetwork::TransportStats wire;
    Counter wireDrops = 0;
    Counter wireDups = 0;
    Counter wireReorders = 0;
};

LossyRun
runTransport(const MachineConfig &cfg)
{
    Machine m(cfg);
    Addr base = allocSpread(m);
    runContention(m, base);
    LossyRun r;
    r.digest = commitDigest(m);
    r.wire = m.network().transportStats();
    r.wireDrops = m.sentinel()->injectorStats().wireDropsInjected();
    r.wireDups = m.sentinel()->injectorStats().wireDupsInjected();
    r.wireReorders = m.sentinel()->injectorStats().wireReordersInjected();
    return r;
}

// ---------------------------------------------------------------------------
// The tentpole equivalence claim: a lossy run's final state is
// bit-identical to the clean same-seed run, at 1, 2 and 4 shards.

TEST(TransportTest, LossyRunBitIdenticalToCleanRunAcrossShards)
{
    CommitDigest reference;
    bool haveReference = false;
    for (int shards : {1, 2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        MachineConfig clean = transportConfig(4, 11);
        clean.shards = shards;
        MachineConfig lossy = clean;
        addWireLoss(lossy);

        LossyRun c = runTransport(clean);
        LossyRun l = runTransport(lossy);

        // The faults really happened and the ARQ machinery absorbed
        // them (each fault class individually, per the acceptance bar).
        EXPECT_GT(l.wireDrops, 0u);
        EXPECT_GT(l.wireDups, 0u);
        EXPECT_GT(l.wireReorders, 0u);
        EXPECT_GT(l.wire.retransmits, 0u);
        EXPECT_GT(l.wire.dupsFiltered, 0u);
        EXPECT_GT(l.wire.reordersAccepted, 0u);
        EXPECT_EQ(c.wire.copies, 0u); // clean run: transport off

        // ...and none of it was visible to the protocol: same final
        // caches/directory, same execution time, same stats.
        EXPECT_EQ(l.digest, c.digest);

        // All shard counts agree with each other too.
        if (!haveReference) {
            reference = c.digest;
            haveReference = true;
        } else {
            EXPECT_EQ(c.digest, reference);
            EXPECT_EQ(l.digest, reference);
        }
    }
}

TEST(TransportTest, LossComposesWithCommitPlaneInjection)
{
    // Satellite: enabling wire loss must not shift the commit-plane
    // fault schedule — same jitter, same NACK decisions, same hint
    // fates for the same seed. (The fault streams draw unconditionally
    // per decision point; the wire plane draws from separate per-lane
    // streams.) Jitter and NACKs perturb timing, so the two runs are
    // compared on the *entire* commit digest: if loss shifted any
    // commit decision, timing would diverge and this would fail.
    MachineConfig injected = transportConfig(4, 7);
    addCommitFaults(injected);
    MachineConfig both = injected;
    addWireLoss(both);

    LossyRun a = runTransport(injected);
    LossyRun b = runTransport(both);
    EXPECT_GT(b.wireDrops, 0u);
    EXPECT_EQ(a.digest, b.digest);
}

TEST(TransportTest, HeavyLossStillQuiescesViaAssuredRetransmission)
{
    // 60% drop probability: most frames need the RTO path, many exhaust
    // kMaxWireRetries and escalate to assured (injector-bypassing)
    // retransmission. drain() panics if any lane fails to quiesce.
    MachineConfig cfg = transportConfig(2, 5);
    cfg.magic.verify.fault.wireDropProb = 0.6;
    LossyRun r = runTransport(cfg);
    EXPECT_GT(r.wireDrops, 0u);
    EXPECT_GT(r.wire.assuredRetransmits, 0u);
    EXPECT_EQ(r.digest, runTransport(transportConfig(2, 5)).digest);
}

// ---------------------------------------------------------------------------
// Transaction-level loss: requests killed outright at the home NI,
// recovered by timeout/retry. Timing-perturbing by nature — asserted
// on recovery and coherence, not bit-identity.

TEST(TransportTest, TxnDropsRecoverByTimeoutRetry)
{
    MachineConfig cfg = transportConfig(4, 9);
    cfg.magic.verify.fault.txnDropProb = 0.2;
    cfg.magic.txnRetryTimeout = 2000;

    Machine m(cfg);
    Addr base = allocSpread(m);
    runContention(m, base);

    Summary s = summarize(m);
    EXPECT_GT(s.reqDropsInjected, 0u);
    EXPECT_GT(s.timeoutRetries, 0u);
    EXPECT_EQ(s.degradedTxns, 0u); // budget 8 vs P(drop)=0.2: never out
    EXPECT_FALSE(s.runDegraded());
    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
    EXPECT_EQ(m.sentinel()->watchdog()->outstanding(), 0u);
}

TEST(TransportTest, ExhaustedRetryBudgetCompletesDegraded)
{
    // Every remote request dies at the home NI and the budget is tiny:
    // the read must still complete (degraded), the machine must still
    // drain, and the report must say so.
    MachineConfig cfg = transportConfig(2, 3);
    cfg.magic.verify.fault.txnDropProb = 1.0;
    cfg.magic.txnRetryTimeout = 500;
    cfg.magic.txnRetryBudget = 2;

    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0); // homed on node 0
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1)
            co_await env.read(a); // remote: NetGet to node 0, dropped
    });
    m.drain();

    Summary s = summarize(m);
    EXPECT_EQ(s.degradedTxns, 1u);
    EXPECT_EQ(s.timeoutRetries, 2u);
    EXPECT_EQ(s.degradedResumes, 1u);
    EXPECT_TRUE(s.runDegraded());
    ASSERT_EQ(s.degraded.size(), 1u);
    EXPECT_EQ(s.degraded[0].node, 1u);
    EXPECT_EQ(s.degraded[0].line, lineBase(a));
    EXPECT_EQ(s.degraded[0].retries, 2u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->watchdog()->outstanding(), 0u);
}

TEST(TransportTest, TransportStatsExportToDenseHandles)
{
    MachineConfig cfg = transportConfig(2, 21);
    addWireLoss(cfg);
    Machine m(cfg);
    Addr base = allocSpread(m);
    runContention(m, base, 2);

    Summary s = summarize(m);
    StatSet stats;
    exportTransportStats(s, stats);
    EXPECT_EQ(stats.get(stats.handle("transport.wire.drops")),
              static_cast<double>(s.wireDrops));
    EXPECT_EQ(stats.get(stats.handle("transport.wire.retransmits")),
              static_cast<double>(s.wireRetransmits));
    EXPECT_EQ(stats.get(stats.handle("transport.txn.degraded")), 0.0);
    EXPECT_GT(stats.get(stats.handle("transport.wire.copies")), 0.0);
}

} // namespace
} // namespace flashsim::machine
