/**
 * @file
 * OS: multiprogramming workload (Table 3.5: 8 "makes" of a small C
 * program under IRIX 5.2).
 *
 * We cannot boot IRIX, so the workload is a synthetic multiprogrammed
 * compile modeled on what the paper reports about it: eight processes
 * each alternating user-mode compilation phases (private working sets,
 * compute heavy) with kernel phases (~50% of time) that take
 * fine-grained kernel locks, walk shared kernel tables homed across
 * the machine (remote clean, 58.6% of misses), allocate and zero fresh
 * pages from the machine-wide pool (where the page-placement policy —
 * round-robin vs first-fit — creates the Section 4.3 hot-spotting),
 * and touch the file cache.
 */

#ifndef FLASHSIM_APPS_OS_WORKLOAD_HH_
#define FLASHSIM_APPS_OS_WORKLOAD_HH_

#include <cstdint>

#include "apps/workload.hh"
#include "sim/random.hh"

namespace flashsim::apps
{

struct OsParams
{
    int tasks = 6;            ///< compile tasks per processor
    int userLines = 320;      ///< private working set lines per process
    int kernelTableLines = 2048; ///< shared kernel structures
    int hotLines = 16;           ///< intensively write-shared counters
    int hotOpsPerTask = 80;      ///< scheduler-tick style RMW bursts
    int fileCacheLines = 1024;
    int pagesPerTask = 6;    ///< fresh pages allocated+zeroed per task
    std::uint64_t userInstrsPerLine = 520;
    std::uint64_t kernelInstrsPerOp = 90;
    std::uint64_t seed = 5150;

    static OsParams
    paper()
    {
        OsParams p;
        p.tasks = 8;
        return p;
    }
};

class OsWorkload : public Workload
{
  public:
    explicit OsWorkload(OsParams params = {}) : p_(params) {}

    std::string name() const override { return "os"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    OsParams p_;
    int nprocs_ = 0;
    Addr pageLines_ = 32;
    std::vector<Addr> userBase_;  ///< per-process private memory
    Addr kernelBase_ = 0;         ///< shared kernel tables
    Addr hotBase_ = 0;            ///< hot scheduler/VM counter lines
    Addr fileBase_ = 0;           ///< file cache
    std::vector<Addr> freshPages_;///< page pool (placement-policy homed)
    std::vector<tango::LockVar> locks_; ///< fs / vm / proc-table locks
    tango::BarrierVar bar_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_OS_WORKLOAD_HH_
