/**
 * @file
 * Proves EventQueue::schedule() is allocation-free in steady state.
 *
 * The whole point of InlineCallback + the bucket ring is that the
 * per-event path performs zero heap allocations once bucket capacity
 * has warmed up (std::function used to allocate on every capture past
 * 16 bytes). This binary-wide counting operator new makes that claim a
 * test instead of a hope: every allocation anywhere in the test binary
 * bumps the counter, and the steady-state loop asserts it stays put.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hh"

namespace
{
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace flashsim
{
namespace
{

/**
 * The largest capture shape scheduled in-tree (MAGIC's dispatch lambda:
 * object pointer + a Message-sized payload + bookkeeping), filling
 * InlineCallback's entire inline budget.
 */
struct MaxPayload
{
    void *self;
    std::uint64_t addr, arg;
    std::uint32_t fields[6];
    std::uint8_t flags[2];
};
// [&sink, p] below fills InlineCallback::kInlineBytes exactly; the
// constructor's static_assert rejects anything larger at compile time.
static_assert(sizeof(MaxPayload) + sizeof(void *) ==
              InlineCallback::kInlineBytes);

TEST(AllocFree, SteadyStateScheduleDoesNotAllocate)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    std::uint32_t lcg = 1;
    auto post = [&] {
        lcg = lcg * 1664525u + 1013904223u;
        const Cycles d = (lcg >> 20) & 0xff;
        MaxPayload p{&eq, sink, d, {1, 2, 3, 4, 5, 6}, {7, 8}};
        eq.schedule(d, [&sink, p] { sink += p.addr ^ p.arg; });
    };

    // Warm-up: grow every bucket vector to its steady-state capacity
    // over many ring wraps of the same delay distribution.
    for (int i = 0; i < 50000; ++i) {
        post();
        eq.step();
    }

    const std::uint64_t before = g_allocs.load();
    for (int i = 0; i < 20000; ++i) {
        post();
        eq.step();
    }
    EXPECT_EQ(g_allocs.load(), before)
        << "EventQueue::schedule()/step() allocated in steady state";
    ASSERT_NE(sink, 0u);
}

TEST(AllocFree, MaxCaptureIntoWarmBucketDoesNotAllocate)
{
    // A single schedule() into a bucket with spare capacity performs no
    // allocation even for the largest in-tree capture: the callback
    // lives inline in the Event, and a drained bucket keeps its
    // capacity (freshen() clears, it does not shrink).
    EventQueue eq;
    int hits = 0;
    for (int i = 0; i < 16; ++i)
        eq.schedule(1, [&hits] { ++hits; });
    for (int i = 0; i < 16; ++i)
        eq.step();
    EXPECT_EQ(hits, 16);
    // now() == 1; delay 0 lands back in the just-drained bucket.
    const std::uint64_t before = g_allocs.load();
    MaxPayload p{&eq, 1, 2, {1, 2, 3, 4, 5, 6}, {7, 8}};
    eq.schedule(0, [&hits, p] { hits += static_cast<int>(p.arg); });
    EXPECT_EQ(g_allocs.load(), before);
    eq.run();
    EXPECT_EQ(hits, 18);
}

} // namespace
} // namespace flashsim
