/**
 * @file
 * Node main-memory controller.
 *
 * 64-bit path to memory, 14 cycles from the head of the controller
 * queue to the first 8 bytes, and a 128-byte line that streams for 16
 * cycles (Section 3.2). The controller services one access at a time;
 * later requests wait for the current one, which is how memory
 * occupancy (Tables 4.1/4.2) turns into queueing delay.
 */

#ifndef FLASHSIM_MEMSYS_MEMORY_CONTROLLER_HH_
#define FLASHSIM_MEMSYS_MEMORY_CONTROLLER_HH_

#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::memsys
{

class MemoryController
{
  public:
    /**
     * @param access_cycles cycles to the first 8 bytes (Table 3.2: 14)
     * @param busy_cycles   service interval per line access (16)
     */
    MemoryController(Cycles access_cycles, Cycles busy_cycles)
        : accessCycles_(access_cycles), busyCycles_(busy_cycles)
    {}

    /**
     * Issue a line read at @p t. @return the time the first 8 bytes are
     * available at the node controller.
     */
    Tick
    read(Tick t)
    {
        ++reads;
        Tick start = begin(t);
        return start + accessCycles_;
    }

    /** Issue a line write at @p t (no completion dependency). */
    void
    write(Tick t)
    {
        ++writes;
        begin(t);
    }

    /**
     * Word-sized read-modify-write (fetch&op): one access slot, the
     * row stays open for the write, no line streaming.
     * @return time the old value is available.
     */
    Tick
    rmw(Tick t)
    {
        ++rmws;
        Tick start = t > busyUntil_ ? t : busyUntil_;
        busyUntil_ = start + accessCycles_ + 4;
        occ.addBusy(accessCycles_ + 4);
        return start + accessCycles_;
    }

    /**
     * Occupy the controller for a protocol-data (MDC fill/writeback)
     * access at @p t.
     */
    void
    protocolAccess(Tick t)
    {
        ++protocolAccesses;
        begin(t);
    }

    /** Earliest time a new access could start. */
    Tick freeAt() const { return busyUntil_; }

    Counter reads = 0;
    Counter writes = 0;
    Counter rmws = 0;
    Counter protocolAccesses = 0;
    Occupancy occ;

  private:
    Tick
    begin(Tick t)
    {
        Tick start = t > busyUntil_ ? t : busyUntil_;
        busyUntil_ = start + busyCycles_;
        occ.addBusy(busyCycles_);
        return start;
    }

    Cycles accessCycles_;
    Cycles busyCycles_;
    Tick busyUntil_ = 0;
};

} // namespace flashsim::memsys

#endif // FLASHSIM_MEMSYS_MEMORY_CONTROLLER_HH_
