file(REMOVE_RECURSE
  "CMakeFiles/bench_msgpass.dir/bench_msgpass.cc.o"
  "CMakeFiles/bench_msgpass.dir/bench_msgpass.cc.o.d"
  "bench_msgpass"
  "bench_msgpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msgpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
