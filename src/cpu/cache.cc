#include "cpu/cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "verify/sentinel.hh"

namespace flashsim::cpu
{

using protocol::Message;
using protocol::MsgType;

Cache::Cache(EventQueue &eq, NodeId self, const CacheParams &params,
             magic::Magic &magic)
    : eq_(eq), self_(self), p_(params), magic_(magic)
{
    numSets_ = p_.sizeBytes / (p_.assoc * p_.lineBytes);
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        fatal("Cache: set count %u must be a nonzero power of two",
              numSets_);
    if (p_.lineBytes == 0 || (p_.lineBytes & (p_.lineBytes - 1)) != 0)
        fatal("Cache: line size %u must be a nonzero power of two",
              p_.lineBytes);
    // Tag/set math runs on every access: precompute shift widths so
    // the hot path never divides by a runtime value.
    for (std::uint32_t b = p_.lineBytes; b > 1; b >>= 1)
        ++lineShift_;
    for (std::uint32_t ns = numSets_; ns > 1; ns >>= 1)
        ++setShift_;
    const std::size_t nways =
        static_cast<std::size_t>(numSets_) * p_.assoc;
    states_.assign(nways, State::Invalid);
    // Deliberately default-initialized (uninitialized): a Way is only
    // read once its state leaves Invalid, and installLine fills it
    // first. Zeroing ~200 KB per construction is what this avoids.
    ways_.reset(new Way[nways]);
    mshrs_.resize(static_cast<std::size_t>(p_.mshrs));
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(addr >> lineShift_) &
           (numSets_ - 1);
}

std::int32_t
Cache::findWay(Addr addr) const
{
    Addr tag = addr >> lineShift_ >> setShift_;
    const std::size_t base =
        static_cast<std::size_t>(setIndex(addr)) * p_.assoc;
    for (std::uint32_t w = 0; w < p_.assoc; ++w) {
        if (states_[base + w] != State::Invalid &&
            ways_[base + w].tag == tag)
            return static_cast<std::int32_t>(base + w);
    }
    return -1;
}

Cache::Mshr *
Cache::findMshr(Addr line)
{
    for (Mshr &m : mshrs_)
        if (m.valid && m.line == line)
            return &m;
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr()
{
    for (Mshr &m : mshrs_)
        if (!m.valid)
            return &m;
    return nullptr;
}

void
Cache::sendRequest(MsgType t, Addr line, bool retry)
{
    Message m;
    m.type = t;
    m.src = self_;
    m.dest = self_;
    m.requester = self_;
    m.addr = line;
    const magic::MagicParams &mp = magic_.params();
    // Retries skip miss detection; first issues pay detect + bus transit.
    Cycles delay = retry ? 0 : mp.missDetect + mp.busTransit;
    magic_.fromProcessorAfter(m, delay);
}

Cache::ReadOutcome
Cache::read(Addr addr, Callback on_fill)
{
    ++reads;
    Addr line = lineBase(addr);
    if (std::int32_t w = findWay(addr); w >= 0) {
        ways_[w].lru = ++lruClock_;
        return ReadOutcome::Hit;
    }
    ++readMisses;
    if (Mshr *m = findMshr(line)) {
        // Merge into the outstanding miss; the read blocks until fill.
        m->readWaiters.push_back(std::move(on_fill));
        return ReadOutcome::Miss;
    }
    Mshr *m = allocMshr();
    if (m == nullptr) {
        --readMisses; // counted on the successful retry instead
        --reads;
        return ReadOutcome::MshrFull;
    }
    m->valid = true;
    m->line = line;
    m->sentType = MsgType::PiGet;
    m->needsUpgrade = false;
    m->invalOnFill = false;
    m->nackCount = 0;
    m->timeoutRetries = 0;
    m->issued = eq_.now();
    m->timeout = {};
    m->readWaiters.clear();
    m->readWaiters.push_back(std::move(on_fill));
    if (verify::Sentinel *s = magic_.sentinel())
        s->txnStart(self_, line);
    armTxnTimeout(*m);
    sendRequest(MsgType::PiGet, line, false);
    return ReadOutcome::Miss;
}

Cache::WriteOutcome
Cache::write(Addr addr)
{
    ++writes;
    Addr line = lineBase(addr);
    std::int32_t w = findWay(addr);
    if (w >= 0 && states_[w] == State::Exclusive) {
        ways_[w].lru = ++lruClock_;
        return WriteOutcome::Done;
    }
    ++writeMisses;
    if (Mshr *m = findMshr(line)) {
        // Same index, same tag: merge with the outstanding miss.
        if (m->sentType == MsgType::PiGet)
            m->needsUpgrade = true;
        return WriteOutcome::Queued;
    }
    // Same index, different tag, with a miss outstanding: stall.
    std::uint32_t set = setIndex(addr);
    for (const Mshr &m : mshrs_) {
        if (m.valid && setIndex(m.line) == set && m.line != line) {
            --writes;
            --writeMisses;
            return WriteOutcome::Conflict;
        }
    }
    Mshr *m = allocMshr();
    if (m == nullptr) {
        --writes;
        --writeMisses;
        return WriteOutcome::MshrFull;
    }
    m->valid = true;
    m->line = line;
    m->sentType = MsgType::PiGetx;
    m->needsUpgrade = false;
    m->invalOnFill = false;
    m->nackCount = 0;
    m->timeoutRetries = 0;
    m->issued = eq_.now();
    m->timeout = {};
    m->readWaiters.clear();
    if (verify::Sentinel *s = magic_.sentinel())
        s->txnStart(self_, line);
    armTxnTimeout(*m);
    sendRequest(MsgType::PiGetx, line, false);
    return WriteOutcome::Queued;
}

void
Cache::onMshrFree(Callback cb)
{
    mshrFreeWaiters_.push_back(std::move(cb));
}

void
Cache::installLine(Addr line, State st)
{
    // An upgrade fill (or a refetch racing an invalidation) may find the
    // line already resident: promote in place, never duplicate the tag.
    if (std::int32_t w = findWay(line); w >= 0) {
        if (st == State::Exclusive)
            states_[w] = State::Exclusive;
        ways_[w].lru = ++lruClock_;
        return;
    }
    Addr tag = line >> lineShift_ >> setShift_;
    const std::size_t base =
        static_cast<std::size_t>(setIndex(line)) * p_.assoc;
    std::size_t victim = base;
    bool have = false;
    for (std::uint32_t w = 0; w < p_.assoc; ++w) {
        if (states_[base + w] == State::Invalid) {
            victim = base + w;
            break;
        }
        if (!have || ways_[base + w].lru < ways_[victim].lru)
            victim = base + w;
        have = true;
    }
    if (states_[victim] == State::Exclusive) {
        ++writebacks;
        Addr victim_line = ((ways_[victim].tag << setShift_) +
                            setIndex(line))
                           << lineShift_;
        sendRequest(MsgType::PiWriteback, victim_line, true);
    } else if (states_[victim] == State::Shared) {
        ++replaceHints;
        Addr victim_line = ((ways_[victim].tag << setShift_) +
                            setIndex(line))
                           << lineShift_;
        sendRequest(MsgType::PiReplaceHint, victim_line, true);
    }
    states_[victim] = st;
    ways_[victim].tag = tag;
    ways_[victim].lru = ++lruClock_;
}

void
Cache::armTxnTimeout(Mshr &m)
{
    const magic::MagicParams &mp = magic_.params();
    if (mp.txnRetryTimeout == 0)
        return;
    // Exponential backoff per re-issue, capped at 16x base.
    Cycles delay = mp.txnRetryTimeout
                   << std::min(m.timeoutRetries, 4u);
    Tick when = eq_.now() + delay;
    if (m.timeout.valid() && eq_.rearmTimer(m.timeout, when))
        return;
    Addr line = m.line;
    m.timeout =
        eq_.armTimer(when, [this, line] { onTxnTimeout(line); });
}

void
Cache::onTxnTimeout(Addr line)
{
    Mshr *m = findMshr(line);
    if (m == nullptr)
        return; // transaction completed as the timer fired
    const magic::MagicParams &mp = magic_.params();
    if (m->timeoutRetries >= mp.txnRetryBudget) {
        // Budget spent: complete the transaction degraded so the
        // processor is not wedged forever on a dead request. Blocked
        // readers resume without data; a later touch of the line is an
        // ordinary fresh miss. The run is reported as degraded.
        ++degradedTxns;
        degradedLog.push_back({m->line, m->timeoutRetries});
        completingDegraded_ = true;
        completeMshr(*m);
        completingDegraded_ = false;
        return;
    }
    ++m->timeoutRetries;
    ++timeoutRetries;
    // The retry restarts the transaction's clock for the watchdog:
    // legitimate recovery must not read as a stuck transaction.
    if (verify::Sentinel *s = magic_.sentinel())
        s->txnRetry(self_, line);
    armTxnTimeout(*m);
    sendRequest(m->sentType, m->line, true);
}

void
Cache::completeMshr(Mshr &m)
{
    if (m.timeout.valid()) {
        eq_.cancelTimer(m.timeout);
        m.timeout = {};
    }
    if (verify::Sentinel *s = magic_.sentinel())
        s->txnRetire(self_, m.line);
    // Swap (not move) so the MSHR inherits the scratch's spare buffer:
    // steady-state completion is allocation-free. Fills only arrive via
    // event-queue deliveries, never from inside these callbacks, so the
    // scratch cannot be re-entered while we iterate it.
    fillScratch_.swap(m.readWaiters);
    m.valid = false;
    // Wake the processor retry hook first so a stalled access can claim
    // the freed MSHR, then release the blocked readers.
    std::vector<Callback> hooks = std::move(mshrFreeWaiters_);
    mshrFreeWaiters_.clear();
    for (Callback &cb : hooks)
        cb();
    for (Callback &cb : fillScratch_)
        cb();
    fillScratch_.clear();
}

void
Cache::fill(const Message &msg)
{
    Addr line = lineBase(msg.addr);
    Mshr *m = findMshr(line);
    if (m == nullptr) {
        if (magic_.params().txnRetryTimeout != 0) {
            // A late reply to a transaction the timeout path already
            // re-issued or completed degraded (e.g. the original and
            // the retry both produced fills). Install benignly so the
            // data is not wasted; coherence is unaffected because the
            // directory already recorded this node.
            ++lateFills;
            installLine(line, msg.type == MsgType::PiPutx
                                  ? State::Exclusive
                                  : State::Shared);
            return;
        }
        panic("Cache %u: fill for line 0x%llx without MSHR", self_,
              static_cast<unsigned long long>(line));
    }
    missLatency.sample(static_cast<double>(eq_.now() - m->issued));

    State st =
        msg.type == MsgType::PiPutx ? State::Exclusive : State::Shared;
    installLine(line, st);

    if (m->invalOnFill && st == State::Shared) {
        // A racing invalidation already hit this line: the blocked read
        // consumes the critical word, but the copy must not persist.
        if (std::int32_t w = findWay(line); w >= 0)
            states_[w] = State::Invalid;
    }

    if (m->needsUpgrade && st == State::Shared) {
        // A write merged into this read miss: chase the fill with an
        // upgrade. The MSHR stays live for the GETX; readers proceed.
        m->sentType = MsgType::PiGetx;
        m->needsUpgrade = false;
        m->invalOnFill = false;
        m->nackCount = 0;
        m->timeoutRetries = 0;
        m->issued = eq_.now();
        armTxnTimeout(*m);
        sendRequest(MsgType::PiGetx, line, true);
        fillScratch_.swap(m->readWaiters);
        for (Callback &cb : fillScratch_)
            cb();
        fillScratch_.clear();
        return;
    }
    completeMshr(*m);
}

void
Cache::deliver(const Message &msg)
{
    switch (msg.type) {
      case MsgType::PiPut:
      case MsgType::PiPutx:
        fill(msg);
        break;
      case MsgType::NetNack: {
        Addr line = lineBase(msg.addr);
        Mshr *m = findMshr(line);
        if (m == nullptr)
            break; // request already satisfied (stale NACK)
        ++nackRetries;
        MsgType t = m->sentType;
        // Exponential backoff with a per-node offset: hot lines (locks,
        // barrier counters) otherwise produce NACK storms where the
        // line ownership keeps moving before any retry can catch it.
        std::uint32_t shift = std::min(m->nackCount, 5u);
        ++m->nackCount;
        Cycles wait = (magic_.params().nackRetryBackoff << shift) +
                      (self_ * 7) % 29;
        // A NACK is proof the request is alive at the home: push the
        // transaction timeout out so the NACK/retry loop is never
        // mistaken for a dead request.
        armTxnTimeout(*m);
        eq_.schedule(wait,
                     [this, t, line] { sendRequest(t, line, true); });
        break;
      }
      default:
        panic("Cache %u: unexpected delivery %s", self_,
              msg.toString().c_str());
    }
}

bool
Cache::holdsDirty(Addr addr) const
{
    std::int32_t w = findWay(addr);
    return w >= 0 && states_[w] == State::Exclusive;
}

void
Cache::invalidate(Addr addr)
{
    ++invalsReceived;
    if (std::int32_t w = findWay(addr); w >= 0)
        states_[w] = State::Invalid;
    // The invalidation may have raced ahead of a read reply in flight
    // to this node (replies wait for memory data, invals do not).
    if (Mshr *m = findMshr(lineBase(addr))) {
        if (m->sentType == protocol::MsgType::PiGet)
            m->invalOnFill = true;
    }
}

void
Cache::downgrade(Addr addr)
{
    if (std::int32_t w = findWay(addr); w >= 0) {
        if (states_[w] == State::Exclusive)
            states_[w] = State::Shared;
    }
}

void
Cache::busyUntil(Tick until)
{
    busyUntil_ = std::max(busyUntil_, until);
}

Cache::State
Cache::state(Addr addr) const
{
    std::int32_t w = findWay(addr);
    return w >= 0 ? states_[w] : State::Invalid;
}

} // namespace flashsim::cpu
