# Empty compiler generated dependencies file for bench_msgpass.
# This may be replaced when dependencies are built.
