#include "verify/oracle.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace flashsim::verify
{

using protocol::DirHeader;
using protocol::HandlerId;
using protocol::HandlerResult;
using protocol::Message;
using protocol::MsgType;

namespace
{

bool
isGetKind(MsgType t)
{
    return t == MsgType::PiGet || t == MsgType::NetGet ||
           t == MsgType::NetFwdGet;
}

bool
isGetxKind(MsgType t)
{
    return t == MsgType::PiGetx || t == MsgType::NetGetx ||
           t == MsgType::NetFwdGetx;
}

std::uint64_t
bit(NodeId n)
{
    return std::uint64_t{1} << n;
}

} // namespace

CoherenceOracle::CoherenceOracle(Wiring wiring, bool allow_hint_anomalies)
    : w_(std::move(wiring)), allowHintAnomalies_(allow_hint_anomalies)
{
    if (w_.numNodes > 64)
        fatal("CoherenceOracle: sharer bitmasks support at most 64 nodes "
              "(machine has %d)", w_.numNodes);
}

CoherenceOracle::GoldenLine &
CoherenceOracle::line(Addr line_base)
{
    GoldenLine &g = lines_[line_base];
    if (g.mirrorCount.empty())
        g.mirrorCount.resize(static_cast<std::size_t>(w_.numNodes), 0);
    return g;
}

CoherenceOracle::GoldenLine *
CoherenceOracle::find(Addr line_base)
{
    auto it = lines_.find(line_base);
    return it == lines_.end() ? nullptr : &it->second;
}

void
CoherenceOracle::fail(Tick now, NodeId node, Addr addr, const char *kind,
                      std::string detail)
{
    Violation v{now, node, addr, kind, std::move(detail)};
    ++violationCount_;
    if (log_.size() < kLogCap)
        log_.push_back(v);
    if (onViolation)
        onViolation(v);
}

void
CoherenceOracle::onHandler(NodeId node, bool at_home, Tick now,
                           const Message &msg, const HandlerResult &res)
{
    const Addr lb = lineBase(msg.addr);
    if (!applyTransition(node, at_home, now, msg, res, lb))
        return;

    GoldenLine *g = find(lb);
    if (g == nullptr)
        return;
    if (at_home)
        checkDirectory(now, node, lb, *g);
    checkCaches(now, node, lb, *g, /*quiesced=*/false);
}

void
CoherenceOracle::onHandlerDeferred(NodeId node, bool at_home, Tick now,
                                   const Message &msg,
                                   const HandlerResult &res)
{
    const Addr lb = lineBase(msg.addr);
    if (!applyTransition(node, at_home, now, msg, res, lb))
        return;
    if (find(lb) != nullptr)
        touched_.push_back(lb);
}

void
CoherenceOracle::runDeferredChecks(Tick now)
{
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()),
                   touched_.end());
    for (Addr lb : touched_) {
        GoldenLine *g = find(lb);
        if (g == nullptr)
            continue;
        NodeId home = w_.homeOf(lb);
        checkDirectory(now, home, lb, *g);
        checkCaches(now, home, lb, *g, /*quiesced=*/false);
    }
    touched_.clear();
}

bool
CoherenceOracle::applyTransition(NodeId node, bool at_home, Tick now,
                                 const Message &msg,
                                 const HandlerResult &res, Addr lb)
{
    switch (res.id) {
      // Message-passing and fetch&op traffic bypasses the directory.
      case HandlerId::BlockXferReceive:
      case HandlerId::BlockAckReceive:
      case HandlerId::FetchOpService:
      case HandlerId::FetchOpAck:
      case HandlerId::FwdToHome:
        return false;
      default:
        break;
    }

    switch (res.id) {
      case HandlerId::ServeReadMemory: {
        GoldenLine &g = line(lb);
        if (g.truthDirty) {
            fail(now, node, lb, "stale-read",
                 "read served from memory while the line is dirty in a "
                 "cache (owner " + std::to_string(g.truthOwner) + ")");
        } else if (g.memEpoch != g.writeEpoch) {
            fail(now, node, lb, "lost-dirty-data",
                 "read served from memory holding epoch " +
                     std::to_string(g.memEpoch) + " but latest is " +
                     std::to_string(g.writeEpoch));
        }
        if (g.mirrorCount[msg.requester] != 0 && !allowHintAnomalies_) {
            fail(now, node, lb, "dup-sharer",
                 "requester " + std::to_string(msg.requester) +
                     " already on the sharer list when its GET arrived");
        }
        ++g.mirrorCount[msg.requester];
        g.truthSharers |= bit(msg.requester);
        break;
      }

      case HandlerId::ServeWriteMemory: {
        GoldenLine &g = line(lb);
        if (g.truthDirty) {
            fail(now, node, lb, "double-grant",
                 "write serviced from memory while the line is dirty "
                 "(owner " + std::to_string(g.truthOwner) + ")");
        } else if (g.memEpoch != g.writeEpoch) {
            fail(now, node, lb, "lost-dirty-data",
                 "exclusive grant from memory holding epoch " +
                     std::to_string(g.memEpoch) + " but latest is " +
                     std::to_string(g.writeEpoch));
        }
        for (NodeId s = 0; s < static_cast<NodeId>(w_.numNodes); ++s) {
            if (g.mirrorCount[s] == 0 || s == msg.requester)
                continue;
            // The home's own copy is invalidated synchronously inside
            // the handler; remote sharers have an inval in flight.
            // Either way the sharer may have evicted already, with its
            // replacement hint still crossing the mesh toward us.
            g.hintDebt |= bit(s);
            if (s != node)
                g.invalPending |= bit(s);
        }
        std::fill(g.mirrorCount.begin(), g.mirrorCount.end(), 0);
        g.truthSharers = 0;
        g.mirrorDirty = true;
        g.mirrorOwner = msg.requester;
        g.truthDirty = true;
        g.truthOwner = msg.requester;
        ++g.writeEpoch;
        break;
      }

      case HandlerId::RetrieveFromCache: {
        GoldenLine &g = line(lb);
        if (!g.truthDirty || g.truthOwner != node) {
            fail(now, node, lb, "retrieve-not-owner",
                 "cache retrieval at node " + std::to_string(node) +
                     " but golden owner is " +
                     (g.truthDirty ? std::to_string(g.truthOwner)
                                   : std::string("<clean>")));
        }
        if (isGetKind(msg.type)) {
            // Old owner downgrades and serves the requester; memory is
            // brought current now (home case) or at the SWB (3-hop).
            g.truthDirty = false;
            g.truthOwner = kInvalidNode;
            g.truthSharers = bit(node) | bit(msg.requester);
            if (at_home) {
                g.memEpoch = g.writeEpoch;
                g.mirrorDirty = false;
                g.mirrorOwner = kInvalidNode;
                std::fill(g.mirrorCount.begin(), g.mirrorCount.end(), 0);
                ++g.mirrorCount[node];
                if (msg.requester != node)
                    ++g.mirrorCount[msg.requester];
            } else {
                g.swbInFlight = true;
            }
        } else if (isGetxKind(msg.type)) {
            // Ownership moves to the requester; the old copy was
            // invalidated synchronously inside this handler.
            g.truthOwner = msg.requester;
            ++g.writeEpoch;
            if (at_home)
                g.mirrorOwner = msg.requester;
        }
        break;
      }

      case HandlerId::LocalWriteback:
      case HandlerId::RemoteWriteback: {
        GoldenLine &g = line(lb);
        const NodeId writer = msg.src;
        if (g.truthDirty && g.truthOwner == writer) {
            g.truthDirty = false;
            g.truthOwner = kInvalidNode;
            g.memEpoch = g.writeEpoch;
        }
        if (g.mirrorDirty && g.mirrorOwner == writer) {
            g.mirrorDirty = false;
            g.mirrorOwner = kInvalidNode;
        }
        break;
      }

      case HandlerId::LocalHint:
      case HandlerId::RemoteHintOnly:
      case HandlerId::RemoteHintNth: {
        GoldenLine &g = line(lb);
        const NodeId src = msg.src;
        if (g.mirrorCount[src] > 0) {
            if (--g.mirrorCount[src] == 0)
                g.truthSharers &= ~bit(src);
        } else if ((g.hintDebt & bit(src)) != 0) {
            // The hint crossed the invalidation from a later exclusive
            // grant; the directory entry it meant to retire is already
            // gone. Benign race — consume the forgiveness so a second,
            // genuinely spurious hint from this node still fails.
            g.hintDebt &= ~bit(src);
        } else if (!allowHintAnomalies_) {
            fail(now, node, lb, "hint-underflow",
                 "replacement hint from node " + std::to_string(src) +
                     " which is not on the golden sharer list");
        }
        break;
      }

      case HandlerId::SwbReceive: {
        GoldenLine &g = line(lb);
        g.mirrorDirty = false;
        g.mirrorOwner = kInvalidNode;
        ++g.mirrorCount[msg.src];
        if (msg.requester != msg.src)
            ++g.mirrorCount[msg.requester];
        if (g.swbInFlight) {
            g.memEpoch = g.writeEpoch;
            g.swbInFlight = false;
        }
        break;
      }

      case HandlerId::OwnXferReceive: {
        GoldenLine &g = line(lb);
        g.mirrorDirty = true;
        g.mirrorOwner = msg.requester;
        break;
      }

      case HandlerId::InvalReceive: {
        GoldenLine &g = line(lb);
        g.invalPending &= ~bit(node);
        break;
      }

      case HandlerId::ReplyToProc: {
        GoldenLine *g = find(lb);
        if (g == nullptr)
            break;
        if (msg.type == MsgType::NetPutx && g->truthOwner != msg.requester) {
            fail(now, node, lb, "putx-not-owner",
                 "exclusive reply delivered to node " +
                     std::to_string(msg.requester) +
                     " but golden owner is " +
                     std::to_string(g->truthOwner));
        }
        if (msg.type == MsgType::NetPut &&
            (g->truthSharers & bit(msg.requester)) == 0 &&
            (g->invalPending & bit(msg.requester)) == 0) {
            fail(now, node, lb, "put-not-sharer",
                 "read reply delivered to node " +
                     std::to_string(msg.requester) +
                     " which is not an entitled sharer");
        }
        break;
      }

      // NACKs and acks change no golden state.
      case HandlerId::HomeNack:
      case HandlerId::NackReceive:
      case HandlerId::InvalAck:
      case HandlerId::FwdHomeToDirty:
        break;

      default:
        break;
    }
    return true;
}

void
CoherenceOracle::checkDirectory(Tick now, NodeId home, Addr line_base,
                                const GoldenLine &g)
{
    DirHeader h = w_.header(home, line_base);
    if (h.dirty != g.mirrorDirty) {
        fail(now, home, line_base, "dir-mismatch",
             std::string("directory dirty bit is ") +
                 (h.dirty ? "set" : "clear") + " but golden mirror says " +
                 (g.mirrorDirty ? "set" : "clear"));
        return;
    }
    if (g.mirrorDirty && h.owner != g.mirrorOwner) {
        fail(now, home, line_base, "dir-mismatch",
             "directory owner is " + std::to_string(h.owner) +
                 " but golden mirror says " +
                 std::to_string(g.mirrorOwner));
        return;
    }
    std::vector<NodeId> list = w_.sharers(home, line_base);
    std::vector<std::uint16_t> want = g.mirrorCount;
    for (NodeId s : list) {
        if (s >= static_cast<NodeId>(w_.numNodes) || want[s] == 0) {
            fail(now, home, line_base, "dir-mismatch",
                 "directory sharer list contains node " +
                     std::to_string(s) +
                     " not in the golden mirror (list size " +
                     std::to_string(list.size()) + ")");
            return;
        }
        --want[s];
    }
    for (NodeId s = 0; s < static_cast<NodeId>(w_.numNodes); ++s) {
        if (want[s] != 0) {
            fail(now, home, line_base, "dir-mismatch",
                 "directory sharer list is missing node " +
                     std::to_string(s) + " (golden mirror has it " +
                     std::to_string(g.mirrorCount[s]) + "x, list has it " +
                     std::to_string(g.mirrorCount[s] - want[s]) + "x)");
            return;
        }
    }
}

void
CoherenceOracle::checkCaches(Tick now, NodeId node, Addr line_base,
                             const GoldenLine &g, bool quiesced)
{
    int exclusive = 0;
    NodeId holder = kInvalidNode;
    for (NodeId n = 0; n < static_cast<NodeId>(w_.numNodes); ++n) {
        int st = w_.cacheState(n, line_base);
        if (st == 2) {
            ++exclusive;
            holder = n;
            if (exclusive > 1) {
                fail(now, node, line_base, "multi-writer",
                     "more than one cache holds the line Exclusive");
                return;
            }
        } else if (st == 1) {
            std::uint64_t allowed = g.truthSharers;
            if (!quiesced) {
                allowed |= g.invalPending;
                if (g.truthDirty && g.truthOwner != kInvalidNode)
                    allowed |= bit(g.truthOwner); // upgrade in flight
            }
            if ((allowed & bit(n)) == 0) {
                fail(now, node, line_base, "rogue-sharer",
                     "node " + std::to_string(n) +
                         " holds a Shared copy without being an entitled "
                         "sharer or having an invalidation in flight");
            }
        }
    }
    if (exclusive == 1) {
        if (!g.truthDirty) {
            fail(now, node, line_base, "rogue-writer",
                 "node " + std::to_string(holder) +
                     " holds the line Exclusive but the golden state is "
                     "clean");
        } else if (holder != g.truthOwner) {
            fail(now, node, line_base, "wrong-owner",
                 "node " + std::to_string(holder) +
                     " holds the line Exclusive but the golden owner is " +
                     std::to_string(g.truthOwner));
        }
    }
    if (quiesced) {
        if (g.truthDirty && exclusive == 0) {
            fail(now, node, line_base, "lost-owner",
                 "quiesced machine: golden state dirty (owner " +
                     std::to_string(g.truthOwner) +
                     ") but no cache holds the line Exclusive");
        }
        if (!g.truthDirty && g.memEpoch != g.writeEpoch) {
            fail(now, node, line_base, "lost-dirty-data",
                 "quiesced machine: memory holds epoch " +
                     std::to_string(g.memEpoch) + " but latest is " +
                     std::to_string(g.writeEpoch));
        }
    }
}

void
CoherenceOracle::finalCheck(Tick now)
{
    std::vector<Addr> addrs;
    addrs.reserve(lines_.size());
    for (const auto &[a, g] : lines_)
        addrs.push_back(a);
    std::sort(addrs.begin(), addrs.end());
    for (Addr a : addrs) {
        GoldenLine &g = lines_[a];
        if (g.invalPending != 0) {
            fail(now, 0, a, "stuck-inval",
                 "quiesced machine: invalidations still marked in flight "
                 "(mask 0x" + [&] {
                     std::ostringstream os;
                     os << std::hex << g.invalPending;
                     return os.str();
                 }() + ")");
        }
        if (g.swbInFlight) {
            fail(now, 0, a, "stuck-swb",
                 "quiesced machine: sharing writeback never arrived at "
                 "the home node");
        }
        NodeId home = w_.homeOf(a);
        checkDirectory(now, home, a, g);
        checkCaches(now, home, a, g, /*quiesced=*/true);
    }
}

} // namespace flashsim::verify
