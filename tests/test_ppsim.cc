/** @file Unit tests for the PP instruction set emulator (PPsim). */

#include <gtest/gtest.h>

#include <utility>

#include "ppisa/decode.hh"
#include "ppisa/instruction.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppisa
{
namespace
{

Instr
rri(Op op, int rd, int rs, std::int64_t imm)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.imm = imm;
    return in;
}

Instr
rrr(Op op, int rd, int rs, int rt)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.rt = static_cast<std::uint8_t>(rt);
    return in;
}

Instr
field(Op op, int rd, int rs, unsigned lo, unsigned width)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    return in;
}

Instr
halt()
{
    Instr in;
    in.op = Op::Halt;
    return in;
}

Instr
nop()
{
    return Instr{};
}

/** Run a single-issue program (each instruction in its own pair). */
struct Runner
{
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;

    Cycles
    run(std::vector<Instr> instrs)
    {
        Program prog;
        prog.name = "test";
        // A NOP pair between consecutive instructions keeps load-delay
        // and pairing rules trivially satisfied for semantic tests.
        for (const Instr &i : instrs) {
            prog.mutablePairs().push_back(InstrPair{i, nop()});
            prog.mutablePairs().push_back(InstrPair{nop(), nop()});
        }
        // Rewrite branch targets (instruction index -> pair index).
        for (auto &p : prog.mutablePairs()) {
            if (p.a.isBranch())
                p.a.imm *= 2;
        }
        prog.mutablePairs().push_back(InstrPair{halt(), nop()});
        PpSim sim;
        return sim.run(prog, regs, mem, sent, stats);
    }
};

TEST(PpSim, AluBasics)
{
    Runner r;
    r.regs[1] = 7;
    r.regs[2] = 5;
    r.run({rrr(Op::Add, 3, 1, 2), rrr(Op::Sub, 4, 1, 2),
           rrr(Op::And, 5, 1, 2), rrr(Op::Or, 6, 1, 2),
           rrr(Op::Xor, 7, 1, 2)});
    EXPECT_EQ(r.regs[3], 12u);
    EXPECT_EQ(r.regs[4], 2u);
    EXPECT_EQ(r.regs[5], 5u);
    EXPECT_EQ(r.regs[6], 7u);
    EXPECT_EQ(r.regs[7], 2u);
}

TEST(PpSim, Immediates)
{
    Runner r;
    r.regs[1] = 0xf0;
    r.run({rri(Op::Addi, 2, 1, 0x10), rri(Op::Andi, 3, 1, 0x30),
           rri(Op::Ori, 4, 1, 0x0f), rri(Op::Xori, 5, 1, -1),
           rri(Op::Slli, 6, 1, 4), rri(Op::Srli, 7, 1, 4)});
    EXPECT_EQ(r.regs[2], 0x100u);
    EXPECT_EQ(r.regs[3], 0x30u);
    EXPECT_EQ(r.regs[4], 0xffu);
    EXPECT_EQ(r.regs[5], ~std::uint64_t{0xf0});
    EXPECT_EQ(r.regs[6], 0xf00u);
    EXPECT_EQ(r.regs[7], 0xfu);
}

TEST(PpSim, SignedOps)
{
    Runner r;
    r.regs[1] = static_cast<std::uint64_t>(-8);
    r.run({rri(Op::Srai, 2, 1, 2), rri(Op::Slti, 3, 1, 0),
           rri(Op::Slti, 4, 1, -10)});
    EXPECT_EQ(static_cast<std::int64_t>(r.regs[2]), -2);
    EXPECT_EQ(r.regs[3], 1u);
    EXPECT_EQ(r.regs[4], 0u);
}

TEST(PpSim, R0IsHardZero)
{
    Runner r;
    r.run({rri(Op::Addi, 0, 0, 99), rri(Op::Addi, 1, 0, 3)});
    EXPECT_EQ(r.regs[0], 0u);
    EXPECT_EQ(r.regs[1], 3u);
}

TEST(PpSim, LoadStore)
{
    Runner r;
    r.regs[1] = 0x1000;
    r.regs[2] = 0xdeadbeef;
    r.run({rri(Op::Sd, 0, 1, 8), rri(Op::Ld, 3, 1, 8)});
    // Sd encodes value in rt; build explicitly:
    Runner r2;
    r2.regs[1] = 0x1000;
    r2.regs[2] = 0xdeadbeef;
    Instr sd;
    sd.op = Op::Sd;
    sd.rs = 1;
    sd.rt = 2;
    sd.imm = 8;
    r2.run({sd, rri(Op::Ld, 3, 1, 8)});
    EXPECT_EQ(r2.regs[3], 0xdeadbeefu);
}

TEST(PpSim, FindFirstSet)
{
    Runner r;
    r.regs[1] = 0x80;
    r.regs[2] = 0;
    r.regs[3] = 1;
    r.run({rri(Op::Ffs, 4, 1, 0), rri(Op::Ffs, 5, 2, 0),
           rri(Op::Ffs, 6, 3, 0)});
    EXPECT_EQ(r.regs[4], 7u);
    EXPECT_EQ(r.regs[5], 64u); // all-zero convention
    EXPECT_EQ(r.regs[6], 0u);
}

TEST(PpSim, BitfieldExtractInsert)
{
    Runner r;
    r.regs[1] = 0xabcd1234u;
    r.regs[2] = 0x7;
    r.regs[3] = 0xffffffffffffffffu;
    r.run({field(Op::Ext, 4, 1, 8, 8), field(Op::Orfi, 5, 1, 32, 4),
           field(Op::Andfi, 6, 3, 16, 16)});
    EXPECT_EQ(r.regs[4], 0x12u);
    EXPECT_EQ(r.regs[5], 0xfabcd1234u);
    EXPECT_EQ(r.regs[6], 0xffffffff0000ffffu);

    Runner r2;
    r2.regs[1] = 0; // target of Ins
    r2.regs[2] = 0x5;
    Instr ins = field(Op::Ins, 1, 2, 16, 4);
    r2.run({ins});
    EXPECT_EQ(r2.regs[1], 0x50000u);
}

TEST(PpSim, BranchOnBit)
{
    // bbs r1[3] -> skip the addi
    Instr b;
    b.op = Op::Bbs;
    b.rs = 1;
    b.lo = 3;
    b.imm = 2; // instruction index (Runner doubles it)
    Runner r;
    r.regs[1] = 0x8;
    r.run({b, rri(Op::Addi, 2, 0, 1), rri(Op::Addi, 3, 0, 1)});
    EXPECT_EQ(r.regs[2], 0u); // skipped
    EXPECT_EQ(r.regs[3], 1u);

    Runner r2;
    r2.regs[1] = 0; // bit clear: fall through
    r2.run({b, rri(Op::Addi, 2, 0, 1), rri(Op::Addi, 3, 0, 1)});
    EXPECT_EQ(r2.regs[2], 1u);
}

TEST(PpSim, SendProducesMessages)
{
    Instr s;
    s.op = Op::Send;
    s.rs = 1; // dest
    s.rt = 2; // arg
    s.imm = 12;
    Runner r;
    r.regs[1] = 3;
    r.regs[2] = 0xabc;
    r.run({s, s});
    ASSERT_EQ(r.sent.size(), 2u);
    EXPECT_EQ(r.sent[0].type, 12);
    EXPECT_EQ(r.sent[0].dest, 3u);
    EXPECT_EQ(r.sent[0].arg, 0xabcu);
}

TEST(PpSim, StatsCountPairsAndInstrs)
{
    Runner r;
    r.regs[1] = 1;
    r.run({rrr(Op::Add, 2, 1, 1), field(Op::Ext, 3, 1, 0, 1)});
    // 2 real instrs + 2 padding pairs + halt pair = 5 pairs
    EXPECT_EQ(r.stats.pairs, 5u);
    EXPECT_EQ(r.stats.instrs, 3u); // add, ext, halt is non-NOP
    EXPECT_EQ(r.stats.specials, 1u);
    EXPECT_EQ(r.stats.invocations, 1u);
    EXPECT_GT(r.stats.dualIssueEfficiency(), 0.0);
}

TEST(PpSim, IntraPairRawPanics)
{
    Program prog;
    prog.name = "bad";
    InstrPair p;
    p.a = rri(Op::Addi, 1, 0, 5);
    p.b = rrr(Op::Add, 2, 1, 1); // reads r1 written by slot a
    prog.mutablePairs().push_back(p);
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    EXPECT_DEATH(sim.run(prog, regs, mem, sent, stats), "intra-pair");
}

TEST(PpSim, LoadDelayViolationPanics)
{
    Program prog;
    prog.name = "bad2";
    prog.mutablePairs().push_back(InstrPair{rri(Op::Ld, 1, 0, 0), nop()});
    prog.mutablePairs().push_back(InstrPair{rrr(Op::Add, 2, 1, 1), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    EXPECT_DEATH(sim.run(prog, regs, mem, sent, stats), "load-delay");
}

TEST(PpSim, MemoryStallsAccumulate)
{
    struct SlowMem : PpMemory
    {
        std::uint64_t
        load(Addr, Cycles &extra) override
        {
            extra = 29;
            return 0;
        }
        void
        store(Addr, std::uint64_t, Cycles &extra) override
        {
            extra = 29;
        }
    };
    Program prog;
    prog.name = "slow";
    prog.mutablePairs().push_back(InstrPair{rri(Op::Ld, 1, 0, 0), nop()});
    prog.mutablePairs().push_back(InstrPair{nop(), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    SlowMem mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    Cycles c = sim.run(prog, regs, mem, sent, stats);
    EXPECT_EQ(c, 3u + 29u);
    EXPECT_EQ(stats.memStall, 29u);
}

TEST(PpSim, FieldMaskHelper)
{
    EXPECT_EQ(fieldMask(0, 4), 0xfu);
    EXPECT_EQ(fieldMask(4, 4), 0xf0u);
    EXPECT_EQ(fieldMask(0, 64), ~std::uint64_t{0});
    EXPECT_EQ(fieldMask(63, 1), std::uint64_t{1} << 63);
}

TEST(PpSim, ProgramToStringContainsName)
{
    Program prog;
    prog.name = "pi_get";
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    EXPECT_NE(prog.toString().find("pi_get"), std::string::npos);
    EXPECT_EQ(prog.codeBytes(), 8u);
}

TEST(PpSim, TwoBranchesInPairPanics)
{
    Program prog;
    prog.name = "bad3";
    InstrPair p;
    p.a = rrr(Op::Beq, 0, 0, 0);
    p.b = rrr(Op::Bne, 0, 0, 0);
    p.a.imm = 1;
    p.b.imm = 1;
    prog.mutablePairs().push_back(p);
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    EXPECT_DEATH(sim.run(prog, regs, mem, sent, stats), "two branches");
}

// ---------------------------------------------------------------------------
// Decode-cache conformance: the decoded fast path must be architecturally
// indistinguishable from the reference per-issue interpreter.

Instr
br(Op op, int rs, int rt, std::int64_t target)
{
    Instr in;
    in.op = op;
    in.rs = static_cast<std::uint8_t>(rs);
    in.rt = static_cast<std::uint8_t>(rt);
    in.imm = target;
    return in;
}

Instr
bbit(Op op, int rs, unsigned bit, std::int64_t target)
{
    Instr in;
    in.op = op;
    in.rs = static_cast<std::uint8_t>(rs);
    in.lo = static_cast<std::uint8_t>(bit);
    in.imm = target;
    return in;
}

Instr
send(int type, int rs, int rt)
{
    Instr in;
    in.op = Op::Send;
    in.rs = static_cast<std::uint8_t>(rs);
    in.rt = static_cast<std::uint8_t>(rt);
    in.imm = type;
    return in;
}

/** Everything architecturally observable from one handler run. */
struct RunOutcome
{
    RegFile regs{};
    std::vector<std::pair<Addr, std::uint64_t>> mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    Cycles cycles = 0;
};

RunOutcome
execute(const Program &prog, const RegFile &init, bool reference)
{
    RunOutcome o;
    o.regs = init;
    FlatPpMemory mem;
    mem.poke(0x100, 0xdeadbeef);
    PpSim sim;
    o.cycles = reference
                   ? sim.runReference(prog, o.regs, mem, o.sent, o.stats)
                   : sim.run(prog, o.regs, mem, o.sent, o.stats);
    for (Addr a : {Addr{0x100}, Addr{0x108}, Addr{0xff0}, Addr{0xff8}})
        o.mem.emplace_back(a, mem.peek(a));
    return o;
}

void
expectSameOutcome(const Program &prog, const RegFile &init)
{
    RunOutcome fast = execute(prog, init, /*reference=*/false);
    RunOutcome ref = execute(prog, init, /*reference=*/true);
    EXPECT_EQ(fast.regs, ref.regs);
    EXPECT_EQ(fast.mem, ref.mem);
    EXPECT_EQ(fast.sent, ref.sent);
    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.stats.cycles, ref.stats.cycles);
    EXPECT_EQ(fast.stats.pairs, ref.stats.pairs);
    EXPECT_EQ(fast.stats.instrs, ref.stats.instrs);
    EXPECT_EQ(fast.stats.specials, ref.stats.specials);
    EXPECT_EQ(fast.stats.aluBranch, ref.stats.aluBranch);
    EXPECT_EQ(fast.stats.memStall, ref.stats.memStall);
    EXPECT_EQ(fast.stats.invocations, ref.stats.invocations);
}

TEST(PpDecode, MatchesReferenceOnEveryOpcode)
{
    // One program exercising all 31 opcodes (taken and not-taken forms
    // of every branch), single-issue with NOP spacer pairs so pairing
    // rules hold trivially. Branch targets are instruction indices,
    // rewritten to pair indices below.
    std::vector<Instr> body = {
        /* 0*/ rri(Op::Addi, 1, 0, 0x1234),
        /* 1*/ rri(Op::Addi, 2, 0, 0x0ff0),
        /* 2*/ rrr(Op::Add, 3, 1, 2),
        /* 3*/ rrr(Op::Sub, 4, 1, 2),
        /* 4*/ rrr(Op::And, 5, 1, 2),
        /* 5*/ rrr(Op::Or, 6, 1, 2),
        /* 6*/ rrr(Op::Xor, 7, 1, 2),
        /* 7*/ rri(Op::Addi, 8, 0, 3),
        /* 8*/ rrr(Op::Sllv, 9, 1, 8),
        /* 9*/ rrr(Op::Srlv, 10, 1, 8),
        /*10*/ rrr(Op::Slt, 11, 1, 2),
        /*11*/ rrr(Op::Sltu, 12, 2, 1),
        /*12*/ rri(Op::Andi, 13, 1, 0xff),
        /*13*/ rri(Op::Ori, 14, 1, 0xf000),
        /*14*/ rri(Op::Xori, 15, 1, 0xffff),
        /*15*/ rri(Op::Slli, 16, 1, 5),
        /*16*/ rri(Op::Srli, 17, 1, 5),
        /*17*/ rri(Op::Addi, 19, 0, -64),
        /*18*/ rri(Op::Srai, 18, 19, 3),
        /*19*/ rri(Op::Slti, 20, 19, 0),
        /*20*/ rrr(Op::Sd, 0, 2, 1),
        /*21*/ rri(Op::Ld, 21, 2, 0),
        /*22*/ rrr(Op::Ffs, 22, 2, 0),
        /*23*/ field(Op::Ext, 23, 1, 4, 8),
        /*24*/ field(Op::Ins, 5, 1, 8, 4),
        /*25*/ field(Op::Orfi, 24, 1, 16, 4),
        /*26*/ field(Op::Andfi, 25, 1, 4, 4),
        /*27*/ br(Op::Beq, 1, 1, 29), // taken
        /*28*/ rri(Op::Addi, 26, 0, 999),
        /*29*/ br(Op::Bne, 1, 2, 31), // taken
        /*30*/ rri(Op::Addi, 27, 0, 888),
        /*31*/ bbit(Op::Bbs, 2, 4, 33), // 0xff0 bit 4 set: taken
        /*32*/ rri(Op::Addi, 28, 0, 777),
        /*33*/ bbit(Op::Bbc, 2, 0, 35), // bit 0 clear: taken
        /*34*/ rri(Op::Addi, 29, 0, 666),
        /*35*/ br(Op::Beq, 1, 2, 0),  // not taken
        /*36*/ br(Op::Bne, 1, 1, 0),  // not taken
        /*37*/ bbit(Op::Bbs, 2, 0, 0), // not taken
        /*38*/ bbit(Op::Bbc, 2, 4, 0), // not taken
        /*39*/ send(5, 8, 1),
        /*40*/ br(Op::J, 0, 0, 42),
        /*41*/ rri(Op::Addi, 30, 0, 555),
    };

    Program prog;
    prog.name = "all_ops";
    for (const Instr &i : body) {
        prog.mutablePairs().push_back(InstrPair{i, nop()});
        prog.mutablePairs().push_back(InstrPair{nop(), nop()});
    }
    for (auto &p : prog.mutablePairs())
        if (p.a.isBranch())
            p.a.imm *= 2;
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});

    // Guard: the program really does cover the whole ISA.
    bool seen[32] = {};
    for (const auto &p : prog.pairs()) {
        seen[static_cast<int>(p.a.op)] = true;
        seen[static_cast<int>(p.b.op)] = true;
    }
    for (Op op :
         {Op::Nop, Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Sllv,
          Op::Srlv, Op::Slt, Op::Sltu, Op::Addi, Op::Andi, Op::Ori,
          Op::Xori, Op::Slli, Op::Srli, Op::Srai, Op::Slti, Op::Ld,
          Op::Sd, Op::Beq, Op::Bne, Op::J, Op::Halt, Op::Ffs, Op::Bbs,
          Op::Bbc, Op::Ext, Op::Ins, Op::Orfi, Op::Andfi, Op::Send})
        EXPECT_TRUE(seen[static_cast<int>(op)]) << opName(op);

    expectSameOutcome(prog, RegFile{});
}

TEST(PpDecode, MatchesReferenceOnDualIssuePairsAndLoops)
{
    // Real dual-issue pairs with a backward branch (loop) and a load
    // shadowed by the mandatory delay pair — the shapes the scheduler
    // emits — must agree across both paths, including cycle counts.
    Program prog;
    prog.name = "dual";
    // r1 = 4 (loop counter), r2 = accumulator base
    prog.mutablePairs().push_back(
        InstrPair{rri(Op::Addi, 1, 0, 4), rri(Op::Addi, 2, 0, 0x100)});
    // loop: { acc += ctr | load m[r2] } ; { ctr -= 1 | nop }
    prog.mutablePairs().push_back(
        InstrPair{rrr(Op::Add, 3, 3, 1), rri(Op::Ld, 4, 2, 0)});
    prog.mutablePairs().push_back(
        InstrPair{rri(Op::Addi, 1, 1, -1), nop()});
    InstrPair back;
    back.a = br(Op::Bne, 1, 0, 1);
    back.b = rrr(Op::Xor, 5, 4, 3); // uses the load, one pair later: ok
    prog.mutablePairs().push_back(back);
    prog.mutablePairs().push_back(InstrPair{send(3, 1, 5), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});

    expectSameOutcome(prog, RegFile{});
}

TEST(PpDecode, ReloadInvalidatesCache)
{
    Program prog;
    prog.name = "v1";
    prog.mutablePairs().push_back(InstrPair{rri(Op::Addi, 1, 0, 1), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});

    const DecodedProgram *first = &prog.decoded();
    EXPECT_TRUE(first->matches(prog));
    EXPECT_EQ(&prog.decoded(), first) << "second call must hit the cache";

    // Reload: assigning a new program replaces the pairs storage, so
    // the stale decode no longer matches and is rebuilt on demand.
    Program v2;
    v2.name = "v2";
    v2.mutablePairs().push_back(InstrPair{rri(Op::Addi, 1, 0, 2), nop()});
    v2.mutablePairs().push_back(InstrPair{halt(), nop()});
    (void)v2.decoded(); // warm v2's own cache, then copy it across
    prog = v2;

    const DecodedProgram &redecoded = prog.decoded();
    EXPECT_TRUE(redecoded.matches(prog));
    EXPECT_EQ(redecoded.pairs()[0].a.imm, 2);

    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    sim.run(prog, regs, mem, sent, stats);
    EXPECT_EQ(regs[1], 2u) << "run() must execute the reloaded code";
}

TEST(PpDecode, InPlaceMutationForcesRedecode)
{
    // Staleness regression test: an in-place element overwrite keeps
    // both the data pointer and the size, so the old pointer+size
    // fingerprint could not see it and run() would happily execute the
    // stale decode. The mutation version bumped by mutablePairs() must
    // close that gap — with no explicit invalidate call.
    Program prog;
    prog.name = "patch";
    prog.mutablePairs().push_back(InstrPair{rri(Op::Addi, 1, 0, 7), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});

    const DecodedProgram *first = &prog.decoded();
    EXPECT_EQ(first->pairs()[0].a.imm, 7);
    EXPECT_EQ(&prog.decoded(), first) << "no mutation: cache must hold";

    // First execution, then patch the immediate in place.
    {
        PpSim sim;
        RegFile regs{};
        FlatPpMemory mem;
        std::vector<SentMessage> sent;
        RunStats stats;
        sim.run(prog, regs, mem, sent, stats);
        EXPECT_EQ(regs[1], 7u);
    }
    {
        std::vector<InstrPair> &pairs = prog.mutablePairs();
        ASSERT_EQ(pairs[0].a.imm, 7);
        pairs[0].a.imm = 9; // same storage, same size: only the version
                            // fingerprint can catch this
    }

    EXPECT_FALSE(first->matches(prog))
        << "stale decode must not match after an in-place mutation";
    EXPECT_EQ(prog.decoded().pairs()[0].a.imm, 9);

    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    sim.run(prog, regs, mem, sent, stats);
    EXPECT_EQ(regs[1], 9u) << "run() must execute the patched code";
}

TEST(PpDecode, ExplicitInvalidateStillForcesRebuild)
{
    // invalidateDecodeCache() remains for emphasis at call sites;
    // dropping the cache must rebuild (not crash) on next use.
    Program prog;
    prog.name = "inval";
    prog.mutablePairs().push_back(InstrPair{rri(Op::Addi, 1, 0, 3), nop()});
    prog.mutablePairs().push_back(InstrPair{halt(), nop()});
    const DecodedProgram *first = &prog.decoded();
    EXPECT_TRUE(first->matches(prog));
    prog.invalidateDecodeCache();
    EXPECT_EQ(prog.decoded().pairs()[0].a.imm, 3);
}

} // namespace
} // namespace flashsim::ppisa
