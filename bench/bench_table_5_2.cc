/**
 * @file
 * Reproduces Table 5.2 ("PP Architecture Evaluation"): static handler
 * code size, dynamic dual-issue efficiency, special-instruction usage,
 * mean instruction pairs per handler invocation, and mean handler
 * invocations per processor cache miss, measured over the parallel
 * application suite at three cache sizes.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct Row
{
    double dualIssue = 0;
    double specialFrac = 0;
    double pairsPerInv = 0;
    double invPerMiss = 0;
};

Row
measure(std::uint32_t cache_bytes)
{
    ppisa::RunStats total;
    std::uint64_t invocations = 0;
    std::uint64_t misses = 0;
    for (const std::string &app : apps::parallelAppNames()) {
        RunOutcome r =
            runApp(MachineConfig::flash(16, cache_bytes), app);
        total.accumulate(aggregatePpStats(*r.machine));
        invocations += r.summary.handlerInvocations;
        misses += r.summary.readMisses + r.summary.writeMisses;
    }
    Row row;
    row.dualIssue = total.dualIssueEfficiency();
    row.specialFrac = 100.0 * total.specialFraction();
    row.pairsPerInv = total.pairsPerInvocation();
    row.invPerMiss = misses ? static_cast<double>(invocations) /
                                  static_cast<double>(misses)
                            : 0;
    return row;
}

} // namespace

int
main()
{
    std::printf("Table 5.2: PP architecture evaluation\n\n");

    protocol::HandlerPrograms programs = protocol::buildHandlerPrograms();
    std::printf("Static code size of fully-scheduled handlers (with "
                "NOPs): %.1f KB  (paper: 14.8 KB; MAGIC instruction "
                "cache: 32 KB)\n",
                programs.totalCodeBytes() / 1024.0);
    std::printf("(our protocol subset is smaller than the full FLASH "
                "protocol with all of its corner cases, but like the "
                "paper's it fits the MIC with only cold misses)\n\n");

    struct
    {
        const char *label;
        std::uint32_t bytes;
        double paperDual, paperSpecial, paperPairs, paperInv;
    } cols[] = {
        {"1 MB", 1u << 20, 1.53, 38, 13.5, 3.69},
        {"64 KB", 64u * 1024, 1.54, 37, 13.1, 3.87},
        {"4 KB", 4096, 1.43, 43, 10.8, 3.51},
    };

    std::printf("%-28s | %12s | %12s | %12s\n", "", "1 MB", "64 KB",
                "4 KB");
    Row rows[3];
    for (int i = 0; i < 3; ++i)
        rows[i] = measure(cols[i].bytes);

    auto line = [&](const char *name, double Row::*field, double p0,
                    double p1, double p2, const char *fmt) {
        std::printf("%-28s |", name);
        double paper[3] = {p0, p1, p2};
        for (int i = 0; i < 3; ++i) {
            char buf[32];
            std::snprintf(buf, sizeof buf, fmt, rows[i].*field, paper[i]);
            std::printf(" %12s |", buf);
        }
        std::printf("\n");
    };
    line("dual-issue efficiency", &Row::dualIssue, 1.53, 1.54, 1.43,
         "%.2f (%.2f)");
    line("special instruction use %", &Row::specialFrac, 38, 37, 43,
         "%.0f%% (%.0f%%)");
    line("instr pairs per handler", &Row::pairsPerInv, 13.5, 13.1, 10.8,
         "%.1f (%.1f)");
    line("handlers per cache miss", &Row::invPerMiss, 3.69, 3.87, 3.51,
         "%.2f (%.2f)");
    std::printf("\n(format: measured (paper))\n");
    return 0;
}
