/**
 * @file
 * Deadlock / NACK-livelock watchdog.
 *
 * Tracks every outstanding processor transaction (MSHR allocation to
 * completion) and samples the machine at a fixed interval. Two trip
 * conditions:
 *
 *  - a single transaction older than maxTransactionAge (a wedged or
 *    starved request — deadlock, or a pathological NACK storm that
 *    never lets one requester win);
 *
 *  - no transaction has retired for noProgressWindow cycles while some
 *    are outstanding and events keep firing (global NACK livelock: the
 *    machine is busy going nowhere).
 *
 * The watchdog arms itself on the first outstanding transaction and
 * stops rescheduling once none remain, so a quiescing run's event queue
 * still drains and Machine::drain() terminates. Its sampling events sit
 * on ticks of their own and never reorder protocol events, so enabling
 * it does not perturb simulated timing.
 */

#ifndef FLASHSIM_VERIFY_WATCHDOG_HH_
#define FLASHSIM_VERIFY_WATCHDOG_HH_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/params.hh"

namespace flashsim::verify
{

class Watchdog
{
  public:
    Watchdog(EventQueue &eq, const VerifyParams &params);

    /** A processor transaction for @p addr's line left node @p node. */
    void txnStart(NodeId node, Addr addr);
    /** The transaction completed (data returned to the processor). */
    void txnRetire(NodeId node, Addr addr);
    /** The transaction timed out and was legitimately re-issued: its
     *  age clock restarts so recovery is not mistaken for a wedge. A
     *  retry also counts as progress for the livelock window — a lone
     *  long-backoff retry is forward motion, not a stuck machine. True
     *  livelock stays bounded: the retry budget converts it into a
     *  degraded completion, which retires the transaction. */
    void txnRetry(NodeId node, Addr addr);

    Counter trips() const { return trips_; }
    Counter retired() const { return retired_; }
    std::size_t outstanding() const { return txns_.size(); }

    /** Called once per trip with a human-readable reason; the policy
     *  (post-mortem dump, fatal()) lives in the Sentinel. */
    std::function<void(const std::string &reason)> onTrip;

    /** Outstanding-transaction table, for the post-mortem dump. */
    void writeStatus(std::ostream &os) const;

  private:
    static std::uint64_t
    key(NodeId node, Addr addr)
    {
        return (static_cast<std::uint64_t>(node) << 48) | lineNumber(addr);
    }

    void arm();
    void check(std::uint64_t gen);
    void trip(std::string reason);

    EventQueue &eq_;
    Cycles interval_;
    Cycles maxAge_;
    Cycles noProgressWindow_;

    /** key -> start tick. */
    std::unordered_map<std::uint64_t, Tick> txns_;
    Tick lastProgress_ = 0;
    bool armed_ = false;
    /** Bumped on disarm so already-scheduled checks become no-ops. */
    std::uint64_t gen_ = 0;
    Counter trips_ = 0;
    Counter retired_ = 0;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_WATCHDOG_HH_
