#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/logging.hh"

namespace flashsim
{

void
EventQueue::markLive(Tick when)
{
    const std::size_t idx = when & kRingMask;
    live_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void
EventQueue::clearLive(Tick when)
{
    const std::size_t idx = when & kRingMask;
    live_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

void
EventQueue::netMarkLive(Tick when)
{
    const std::size_t idx = when & kRingMask;
    netLive_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void
EventQueue::netClearLive(Tick when)
{
    const std::size_t idx = when & kRingMask;
    netLive_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _now)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    if (when - _now < kRingSize) {
        Bucket &b = bucketFor(when);
        freshen(b);
        b.events.push_back(Event{when, nextSeq_++, std::move(cb)});
        markLive(when);
        ++ringCount_;
    } else {
        overflow_.push_back(Event{when, nextSeq_++, std::move(cb)});
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
    if (nextCacheValid_ && when < nextCache_)
        nextCache_ = when;
}

void
EventQueue::insertNet(NetEvent e)
{
    const Tick when = e.when;
    NetBucket &b = netRing_[when & kRingMask];
    if (b.head != 0 && b.head == b.events.size()) {
        b.events.clear();
        b.head = 0;
    }
    // Keep [head, end) sorted by (src, seq); buckets are small, so a
    // binary search + vector insert beats a deferred sort.
    auto pos = std::upper_bound(
        b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
        b.events.end(), e, [](const NetEvent &x, const NetEvent &y) {
            if (x.src != y.src)
                return x.src < y.src;
            return x.seq < y.seq;
        });
    b.events.insert(pos, std::move(e));
    netMarkLive(when);
    ++netCount_;
}

void
EventQueue::scheduleNet(Tick when, NodeId src, std::uint64_t srcSeq,
                        Callback cb)
{
    if (when < _now)
        panic("net event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    if (when == _now) {
        // Degenerate zero-latency transit: the current tick's network
        // lane may already have run, so the delivery joins the normal
        // lane (the same deterministic rule in every mode).
        scheduleAt(when, std::move(cb));
        return;
    }
    if (when - _now < kRingSize)
        insertNet(NetEvent{when, src, srcSeq, std::move(cb)});
    else {
        netOverflow_.push_back(NetEvent{when, src, srcSeq, std::move(cb)});
        std::push_heap(netOverflow_.begin(), netOverflow_.end(),
                       NetLater{});
    }
    if (nextCacheValid_ && when < nextCache_)
        nextCache_ = when;
}

EventQueue::TimerId
EventQueue::armTimer(Tick when, Callback cb)
{
    std::uint32_t slot;
    if (!timerFree_.empty()) {
        slot = timerFree_.back();
        timerFree_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(timers_.size());
        timers_.emplace_back();
    }
    TimerSlot &t = timers_[slot];
    t.cb = std::move(cb);
    t.armed = true;
    ++t.armSeq;
    scheduleTimerFire(slot, when);
    return TimerId{slot, timers_[slot].gen};
}

void
EventQueue::scheduleTimerFire(std::uint32_t slot, Tick when)
{
    const std::uint32_t gen = timers_[slot].gen;
    const std::uint64_t armSeq = timers_[slot].armSeq;
    scheduleAt(when, [this, slot, gen, armSeq] {
        TimerSlot &t = timers_[slot];
        if (t.gen != gen || t.armSeq != armSeq || !t.armed)
            return; // cancelled or superseded by a rearm: no-op
        t.armed = false;
        // Move the callback out for the call: it may rearm this very
        // slot or arm fresh timers, either of which can reallocate
        // timers_. Restore it afterwards — unless the callback
        // cancelled its own timer (gen bumped), in which case the slot
        // may already belong to someone else.
        Callback cb = std::move(t.cb);
        cb();
        if (timers_[slot].gen == gen)
            timers_[slot].cb = std::move(cb);
    });
}

bool
EventQueue::rearmTimer(TimerId id, Tick when)
{
    if (!id.valid() || id.slot >= timers_.size())
        return false;
    TimerSlot &t = timers_[id.slot];
    if (t.gen != id.gen)
        return false;
    t.armed = true;
    ++t.armSeq;
    scheduleTimerFire(id.slot, when);
    return true;
}

bool
EventQueue::cancelTimer(TimerId id)
{
    if (!id.valid() || id.slot >= timers_.size())
        return false;
    TimerSlot &t = timers_[id.slot];
    if (t.gen != id.gen)
        return false;
    const bool pending = t.armed;
    t.armed = false;
    ++t.armSeq; // orphan any in-flight fire event
    ++t.gen;    // invalidate every outstanding handle
    timerFree_.push_back(id.slot);
    return pending;
}

bool
EventQueue::timerArmed(TimerId id) const
{
    return id.valid() && id.slot < timers_.size() &&
           timers_[id.slot].gen == id.gen && timers_[id.slot].armed;
}

Tick
EventQueue::nextRingTick() const
{
    if (ringCount_ == 0)
        return kNever;
    // Scan the occupancy bitmap in wrap order starting at now's slot;
    // the window maps slots to ticks in increasing wrap distance, so
    // the first live bucket found holds the earliest ring event.
    const std::size_t base = _now & kRingMask;
    std::size_t w = base >> 6;
    std::uint64_t word = live_[w] & (~std::uint64_t{0} << (base & 63));
    for (std::size_t n = 0; n <= kBitWords; ++n) {
        if (word != 0) {
            const std::size_t idx =
                (w << 6) +
                static_cast<std::size_t>(std::countr_zero(word));
            const Bucket &b = ring_[idx];
            return b.events[b.head].when;
        }
        w = (w + 1) & (kBitWords - 1);
        word = live_[w];
    }
    return kNever; // unreachable while ringCount_ > 0
}

Tick
EventQueue::nextNetRingTick() const
{
    if (netCount_ == 0)
        return kNever;
    const std::size_t base = _now & kRingMask;
    std::size_t w = base >> 6;
    std::uint64_t word = netLive_[w] & (~std::uint64_t{0} << (base & 63));
    for (std::size_t n = 0; n <= kBitWords; ++n) {
        if (word != 0) {
            const std::size_t idx =
                (w << 6) +
                static_cast<std::size_t>(std::countr_zero(word));
            const NetBucket &b = netRing_[idx];
            return b.events[b.head].when;
        }
        w = (w + 1) & (kBitWords - 1);
        word = netLive_[w];
    }
    return kNever; // unreachable while netCount_ > 0
}

Tick
EventQueue::nextTick() const
{
    if (!nextCacheValid_) {
        nextCache_ = computeNextTick();
        nextCacheValid_ = true;
    }
    return nextCache_;
}

Tick
EventQueue::computeNextTick() const
{
    Tick t = nextRingTick();
    if (!overflow_.empty() && overflow_.front().when < t)
        t = overflow_.front().when;
    const Tick nt = nextNetRingTick();
    if (nt < t)
        t = nt;
    if (!netOverflow_.empty() && netOverflow_.front().when < t)
        t = netOverflow_.front().when;
    return t;
}

void
EventQueue::promoteOverflow(Tick t)
{
    if (overflow_.empty() || overflow_.front().when != t)
        return;
    Bucket &b = bucketFor(t);
    freshen(b);
    const std::size_t live_begin = b.head;
    const std::size_t live_end = b.events.size();
    while (!overflow_.empty() && overflow_.front().when == t) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        b.events.push_back(std::move(overflow_.back()));
        overflow_.pop_back();
        ++ringCount_;
    }
    // Every overflow event for tick t was scheduled while t was still
    // outside the ring window, i.e. before any event the window later
    // accepted into the bucket — so all promoted seqs precede all live
    // bucket seqs, and rotating them in front restores global
    // (tick, seq) order. The heap pops them seq-ascending already.
    if (live_end > live_begin)
        std::rotate(b.events.begin() +
                        static_cast<std::ptrdiff_t>(live_begin),
                    b.events.begin() +
                        static_cast<std::ptrdiff_t>(live_end),
                    b.events.end());
    markLive(t);
}

void
EventQueue::promoteNetOverflow(Tick t)
{
    // Sorted insertion by key, so unlike the normal lane no rotate
    // fix-up is needed: the (src, seq) order is position-independent.
    while (!netOverflow_.empty() && netOverflow_.front().when == t) {
        std::pop_heap(netOverflow_.begin(), netOverflow_.end(),
                      NetLater{});
        insertNet(std::move(netOverflow_.back()));
        netOverflow_.pop_back();
    }
}

bool
EventQueue::step()
{
    const Tick t = nextTick();
    if (t == kNever)
        return false;
    _now = t;
    nextCacheValid_ = false; // consuming: recompute lazily
    promoteOverflow(t);
    promoteNetOverflow(t);
    // Network lane first: within a tick every delivery precedes every
    // normal event (the canonical cross-shard order; see scheduleNet).
    NetBucket &nb = netRing_[t & kRingMask];
    if (nb.head < nb.events.size()) {
        Callback cb = std::move(nb.events[nb.head].cb);
        ++nb.head;
        --netCount_;
        if (nb.head == nb.events.size()) {
            nb.events.clear();
            nb.head = 0;
            netClearLive(t);
        }
        cb();
        return true;
    }
    Bucket &b = bucketFor(t);
    // Move the callback out before invoking: the callback may schedule
    // into this same bucket and reallocate its vector.
    Callback cb = std::move(b.events[b.head].cb);
    ++b.head;
    --ringCount_;
    if (b.head == b.events.size()) {
        b.events.clear();
        b.head = 0;
        clearLive(t);
    }
    cb();
    return true;
}

std::uint64_t
EventQueue::drainTick(Tick t)
{
    std::uint64_t executed = 0;
    _now = t;
    nextCacheValid_ = false; // callbacks schedule freely mid-drain
    promoteOverflow(t);
    promoteNetOverflow(t);
    // Network lane first, in (src, seq) order. A delivery can only
    // schedule normal events at this tick (a nested send's transit is
    // at least one cycle, and the zero-latency fallback joins the
    // normal lane), so this bucket never grows while draining.
    NetBucket &nb = netRing_[t & kRingMask];
    if (nb.head < nb.events.size()) {
        while (nb.head < nb.events.size()) {
            Callback cb = std::move(nb.events[nb.head].cb);
            ++nb.head;
            --netCount_;
            cb();
            ++executed;
        }
        nb.events.clear();
        nb.head = 0;
        netClearLive(t);
    }
    // Drain the whole tick from its bucket: nothing earlier can
    // appear (zero-delay schedules append to this bucket; overflow
    // inserts land >= kRingSize ticks out), so skip the bitmap
    // rescan until the tick completes.
    Bucket &b = bucketFor(t);
    if (b.head < b.events.size()) {
        while (b.head < b.events.size()) {
            Callback cb = std::move(b.events[b.head].cb);
            ++b.head;
            --ringCount_;
            cb();
            ++executed;
        }
        b.events.clear();
        b.head = 0;
        clearLive(t);
    }
    // Tick t is fully consumed; warm the horizon cache while the
    // structures are hot so the window loop's nextTick() is O(1).
    nextCache_ = computeNextTick();
    nextCacheValid_ = true;
    return executed;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (true) {
        const Tick t = nextTick();
        if (t == kNever || t > limit)
            break;
        executed += drainTick(t);
    }
    if (_now < limit && limit != kNever)
        _now = limit;
    return executed;
}

void
EventQueue::reset()
{
    for (Bucket &b : ring_) {
        b.events.clear();
        b.head = 0;
    }
    live_.fill(0);
    ringCount_ = 0;
    overflow_.clear();
    for (NetBucket &b : netRing_) {
        b.events.clear();
        b.head = 0;
    }
    netLive_.fill(0);
    netCount_ = 0;
    netOverflow_.clear();
    timers_.clear();
    timerFree_.clear();
    _now = 0;
    nextSeq_ = 0;
    nextCache_ = kNever;
    nextCacheValid_ = true;
}

} // namespace flashsim
