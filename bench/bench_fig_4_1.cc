/**
 * @file
 * Reproduces Figure 4.1 and Table 4.1: all seven workloads at 1 MB
 * caches (16 processors; 8 for the OS workload), FLASH vs the ideal
 * machine. Prints the execution-time breakdown bars, the read-miss
 * distributions, the contentionless read miss times, and the paper's
 * headline per-application slowdowns.
 *
 * Paper reference points (1 MB caches): FLASH is 2%-12% slower than the
 * ideal machine for the optimized applications and the OS workload, and
 * ~25% slower for MP3D, the communication stress test.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct PaperRow
{
    const char *app;
    double missRate; // Table 4.1
    double flashCrmt;
    double idealCrmt;
    double ppOcc;
};

const PaperRow kPaper[] = {
    {"barnes", 0.06, 153, 114, 5.4},  {"fft", 0.64, 115, 83, 14.3},
    {"lu", 0.05, 121, 94, 1.7},       {"mp3d", 6.00, 182, 130, 36.2},
    {"ocean", 0.91, 80, 60, 17.7},    {"radix", 0.78, 136, 98, 22.8},
    {"os", 0.09, 109, 86, 21.0},
};

} // namespace

int
main(int argc, char **argv)
{
    Scale scale = Scale::Default;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--paper") == 0)
            scale = Scale::Paper;

    std::printf("Figure 4.1 / Table 4.1: FLASH vs ideal, 1 MB caches "
                "(16 processors, OS: 8)%s\n\n",
                scale == Scale::Paper ? " [paper problem sizes]" : "");

    sim::SweepRunner runner;
    machine::ProbeResult flash_probe =
        machine::probeMissLatencies(MachineConfig::flash(16), &runner);
    machine::ProbeResult ideal_probe =
        machine::probeMissLatencies(MachineConfig::ideal(16), &runner);

    // All 14 machine runs (7 workloads x FLASH/ideal) are independent
    // jobs; results come back in submission order, so the printed
    // report is identical to the serial one.
    std::vector<PairSpec> specs;
    for (const std::string &app : apps::allWorkloadNames())
        specs.push_back(pairSpec(app, app == "os" ? 8 : 16, 1u << 20,
                                 scale));
    std::vector<Pair> pairs = runPairs(specs, runner);
    printSweepMetrics("fig_4_1", runner.lastMetrics());

    std::printf("Execution time breakdowns (FLASH normalized to 100):\n");
    std::vector<std::pair<std::string, Pair>> results;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        printBars(specs[i].app, pairs[i]);
        results.emplace_back(specs[i].app, std::move(pairs[i]));
    }

    std::printf("\nTable 4.1 statistics (measured):\n");
    for (auto &[app, p] : results)
        printTable41Row(app, p, flash_probe.latency, ideal_probe.latency);

    std::printf("\nPaper vs measured summary:\n");
    std::printf("%-8s | %9s %9s | %8s %8s | %10s\n", "app", "missP",
                "missM", "ppOccP", "ppOccM", "slowdownM");
    for (auto &[app, p] : results) {
        const PaperRow *row = nullptr;
        for (const PaperRow &r : kPaper)
            if (app == r.app)
                row = &r;
        std::printf("%-8s | %8.2f%% %8.2f%% | %7.1f%% %7.1f%% | %9.1f%%\n",
                    app.c_str(), row ? row->missRate : 0.0,
                    100.0 * p.flash.summary.missRate,
                    row ? row->ppOcc : 0.0,
                    100.0 * p.flash.summary.avgPpOcc, p.slowdownPct());
    }
    std::printf("\n(paper: optimized workloads land between 2%% and "
                "12%%, MP3D near 25%%)\n");
    return 0;
}
