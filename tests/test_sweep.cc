/**
 * @file
 * Tests for the deterministic parallel sweep runner: pool mechanics
 * (ordering, stealing, exceptions, the FLASHSIM_JOBS knob) and the
 * serial-vs-parallel determinism guarantee — a multi-config sweep must
 * produce bit-identical per-job results on 1 worker and on N.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/radix.hh"
#include "machine/report.hh"
#include "machine/runner.hh"
#include "sim/sweep.hh"

namespace flashsim::sim
{
namespace
{

TEST(SweepRunner, ResultsArriveInSubmissionOrder)
{
    SweepRunner runner(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 64; ++i)
        jobs.emplace_back([i] {
            // Uneven synthetic work so completion order differs from
            // submission order.
            volatile int sink = 0;
            for (int k = 0; k < (i % 7) * 10000; ++k)
                sink = sink + k;
            return i * i;
        });
    std::vector<int> out = runner.run(std::move(jobs));
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(SweepRunner, RunsEveryJobExactlyOnce)
{
    SweepRunner runner(8);
    std::vector<std::atomic<int>> hits(100);
    runner.runIndexed(100, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, MetricsCoverAllJobs)
{
    SweepRunner runner(3);
    runner.runIndexed(10, [](std::size_t) {});
    const SweepMetrics &m = runner.lastMetrics();
    EXPECT_EQ(m.jobs.size(), 10u);
    EXPECT_EQ(m.workers, 3);
    for (const JobMetrics &j : m.jobs) {
        EXPECT_GE(j.worker, 0);
        EXPECT_LT(j.worker, 3);
        EXPECT_GE(j.wallSeconds, 0.0);
    }
    EXPECT_GE(m.wallSeconds, 0.0);
}

TEST(SweepRunner, WorkerCountClampsToJobCount)
{
    SweepRunner runner(16);
    runner.runIndexed(2, [](std::size_t) {});
    EXPECT_EQ(runner.lastMetrics().workers, 2);
}

TEST(SweepRunner, PropagatesJobException)
{
    SweepRunner runner(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.emplace_back([i]() -> int {
            if (i == 5)
                throw std::runtime_error("job 5 failed");
            return i;
        });
    EXPECT_THROW(runner.run(std::move(jobs)), std::runtime_error);
}

TEST(SweepRunner, ExceptionCarriesFailingJobIndex)
{
    SweepRunner runner(4);
    try {
        runner.runIndexed(8, [](std::size_t i) {
            if (i == 5)
                throw std::runtime_error("cache size must be a power "
                                         "of two");
        });
        FAIL() << "expected SweepJobError";
    } catch (const SweepJobError &e) {
        EXPECT_EQ(e.jobIndex(), 5u);
        EXPECT_EQ(e.jobMessage(),
                  "cache size must be a power of two");
        EXPECT_NE(std::string(e.what()).find("sweep job 5"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SweepRunner, SmallestFailingIndexSurfacesDeterministically)
{
    // When several jobs fail, worker scheduling must not decide which
    // error the caller sees: the smallest index always wins.
    for (int workers : {1, 8}) {
        SweepRunner runner(workers);
        try {
            runner.runIndexed(16, [](std::size_t i) {
                if (i == 3 || i == 6 || i == 11)
                    throw std::runtime_error("job " + std::to_string(i));
            });
            FAIL() << "expected SweepJobError";
        } catch (const SweepJobError &e) {
            EXPECT_EQ(e.jobIndex(), 3u) << workers << " workers";
            EXPECT_EQ(e.jobMessage(), "job 3");
        }
    }
}

TEST(SweepRunner, RemainingJobsStillRunAfterFailure)
{
    SweepRunner runner(2);
    std::vector<std::atomic<int>> hits(12);
    EXPECT_THROW(runner.runIndexed(12,
                                   [&](std::size_t i) {
                                       ++hits[i];
                                       if (i == 0)
                                           throw std::runtime_error("x");
                                   }),
                 SweepJobError);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, NonStdExceptionIsStillAttributed)
{
    SweepRunner runner(3);
    try {
        runner.runIndexed(4, [](std::size_t i) {
            if (i == 2)
                throw 42; // not a std::exception
        });
        FAIL() << "expected SweepJobError";
    } catch (const SweepJobError &e) {
        EXPECT_EQ(e.jobIndex(), 2u);
        EXPECT_EQ(e.jobMessage(), "unknown exception");
    }
}

TEST(SweepRunner, EmptySweepIsFine)
{
    SweepRunner runner(4);
    std::vector<std::function<int()>> jobs;
    EXPECT_TRUE(runner.run(std::move(jobs)).empty());
}

TEST(ResolveWorkers, ExplicitRequestWins)
{
    ASSERT_EQ(setenv("FLASHSIM_JOBS", "7", 1), 0);
    EXPECT_EQ(resolveWorkers(3), 3);
    unsetenv("FLASHSIM_JOBS");
}

TEST(ResolveWorkers, ReadsEnvironmentKnob)
{
    ASSERT_EQ(setenv("FLASHSIM_JOBS", "5", 1), 0);
    EXPECT_EQ(resolveWorkers(0), 5);
    unsetenv("FLASHSIM_JOBS");
}

TEST(ResolveWorkers, IgnoresInvalidEnvironment)
{
    ASSERT_EQ(setenv("FLASHSIM_JOBS", "zero", 1), 0);
    EXPECT_GE(resolveWorkers(0), 1);
    unsetenv("FLASHSIM_JOBS");
}

// ---------------------------------------------------------------------------
// Determinism: a sweep's per-job results must not depend on the worker
// count. Each job owns its Machine, EventQueue and stats, and every
// simulation is internally deterministic, so 1 worker and N workers
// must agree bit for bit.

/** Everything a bench report reads from one run. */
struct RunDigest
{
    Tick execTime = 0;
    double missRate = 0;
    double avgPpOcc = 0;
    double maxPpOcc = 0;
    double avgMemOcc = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t messages = 0;
    std::uint64_t dataMessages = 0;
};

template <typename App, typename Params>
std::function<RunDigest()>
digestJob(machine::MachineConfig cfg, Params params)
{
    return [cfg, params] {
        App w(params);
        auto m = apps::runWorkload(cfg, w);
        machine::Summary s = machine::summarize(*m);
        RunDigest d;
        d.execTime = s.execTime;
        d.missRate = s.missRate;
        d.avgPpOcc = s.avgPpOcc;
        d.maxPpOcc = s.maxPpOcc;
        d.avgMemOcc = s.avgMemOcc;
        d.readMisses = s.readMisses;
        d.writeMisses = s.writeMisses;
        d.messages = m->network().messages();
        d.dataMessages = m->network().dataMessages();
        return d;
    };
}

/** A small multi-config sweep: three apps across machine flavours,
 *  processor counts and cache sizes. */
std::vector<std::function<RunDigest()>>
multiConfigJobs()
{
    apps::FftParams fft;
    fft.logN = 10;
    apps::LuParams lu;
    lu.n = 64;
    apps::RadixParams radix;
    radix.keys = 1 << 12;

    std::vector<std::function<RunDigest()>> jobs;
    jobs.push_back(digestJob<apps::Fft>(
        machine::MachineConfig::flash(4, 64u * 1024u), fft));
    jobs.push_back(digestJob<apps::Fft>(
        machine::MachineConfig::ideal(4, 64u * 1024u), fft));
    jobs.push_back(digestJob<apps::Lu>(
        machine::MachineConfig::flash(16, 64u * 1024u), lu));
    jobs.push_back(digestJob<apps::Radix>(
        machine::MachineConfig::flash(4, 16u * 1024u), radix));
    jobs.push_back(digestJob<apps::Radix>(
        machine::MachineConfig::ideal(4, 16u * 1024u), radix));
    return jobs;
}

TEST(SweepDeterminism, MultiConfigSweepIdenticalAcrossWorkerCounts)
{
    SweepRunner serial(1);
    SweepRunner parallel(8);
    std::vector<RunDigest> a = serial.run(multiConfigJobs());
    std::vector<RunDigest> b = parallel.run(multiConfigJobs());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_EQ(a[i].execTime, b[i].execTime);
        EXPECT_EQ(a[i].missRate, b[i].missRate);
        EXPECT_EQ(a[i].avgPpOcc, b[i].avgPpOcc);
        EXPECT_EQ(a[i].maxPpOcc, b[i].maxPpOcc);
        EXPECT_EQ(a[i].avgMemOcc, b[i].avgMemOcc);
        EXPECT_EQ(a[i].readMisses, b[i].readMisses);
        EXPECT_EQ(a[i].writeMisses, b[i].writeMisses);
        EXPECT_EQ(a[i].messages, b[i].messages);
        EXPECT_EQ(a[i].dataMessages, b[i].dataMessages);
    }
}

TEST(SweepDeterminism, ProbeSweepIdenticalAcrossWorkerCounts)
{
    machine::MachineConfig cfg = machine::MachineConfig::flash(4);
    SweepRunner serial(1);
    SweepRunner parallel(8);
    machine::ProbeResult a = machine::probeMissLatencies(cfg, &serial);
    machine::ProbeResult b = machine::probeMissLatencies(cfg, &parallel);

    EXPECT_EQ(a.latency.localClean, b.latency.localClean);
    EXPECT_EQ(a.latency.localDirtyRemote, b.latency.localDirtyRemote);
    EXPECT_EQ(a.latency.remoteClean, b.latency.remoteClean);
    EXPECT_EQ(a.latency.remoteDirtyHome, b.latency.remoteDirtyHome);
    EXPECT_EQ(a.latency.remoteDirtyRemote, b.latency.remoteDirtyRemote);
    EXPECT_EQ(a.ppOccupancy.localClean, b.ppOccupancy.localClean);
    EXPECT_EQ(a.ppOccupancy.localDirtyRemote,
              b.ppOccupancy.localDirtyRemote);
    EXPECT_EQ(a.ppOccupancy.remoteClean, b.ppOccupancy.remoteClean);
    EXPECT_EQ(a.ppOccupancy.remoteDirtyHome,
              b.ppOccupancy.remoteDirtyHome);
    EXPECT_EQ(a.ppOccupancy.remoteDirtyRemote,
              b.ppOccupancy.remoteDirtyRemote);
}

} // namespace
} // namespace flashsim::sim
