/**
 * @file
 * MAGIC and machine timing/configuration parameters.
 *
 * Latencies are the sub-operation latencies of Table 3.2 (10 ns system
 * clock cycles, taken by the authors from the MAGIC Verilog model);
 * queue limits are Table 3.1. The `ideal` flag selects the paper's ideal
 * machine: all macropipeline sub-operations (jump table, handler,
 * outbox, MDC) take zero time, PI outbound processing drops from 4 to 2
 * cycles, and all queues are infinitely deep.
 */

#ifndef FLASHSIM_MAGIC_PARAMS_HH_
#define FLASHSIM_MAGIC_PARAMS_HH_

#include "ppisa/backend.hh"
#include "sim/types.hh"
#include "verify/params.hh"

namespace flashsim::magic
{

struct MagicParams
{
    /** Ideal (zero-time hardwired) controller instead of the PP. */
    bool ideal = false;
    /** Inbox-initiated speculative memory operations (Section 5.1). */
    bool speculation = true;
    /** Use the PP emulator for handler timing (vs the Table 3.4 table). */
    bool usePpEmulator = true;
    /** Compile handlers without ISA extensions / dual issue (S5.3). */
    bool optimizedPp = true;
    /** Which engine executes handler programs when usePpEmulator is
     *  set. Threaded is the production default (bit-identical to the
     *  interpreter, enforced by the conformance oracle and the
     *  differential fuzz suite); Interpreter is kept selectable for
     *  A/B debugging and as the fallback of record. */
    ppisa::PpBackend ppBackend = ppisa::PpBackend::Threaded;

    // ---- Table 3.2 sub-operation latencies ------------------------------
    Cycles missDetect = 5;   ///< miss detect to request on bus
    Cycles busTransit = 1;
    Cycles piInbound = 1;
    Cycles piOutbound = 4;      ///< FLASH value
    Cycles piOutboundIdeal = 2; ///< ideal-machine value
    Cycles busArb = 1;
    Cycles cacheStateRetrieve = 15; ///< retrieve state from proc cache
    Cycles cacheDataRetrieve = 20;  ///< first double word from proc cache
    Cycles niInbound = 8;
    Cycles niOutbound = 4;
    Cycles inboxArb = 1;  ///< queue selection and arbitration
    Cycles jumpTable = 2;
    Cycles outbox = 1;
    Cycles mdcMissPenalty = 29;
    Cycles memAccess = 14;   ///< time to first 8 bytes
    /** Memory controller service interval per line: the 128-byte line
     *  streams over the 64-bit path for 16 cycles plus bank turnaround
     *  (calibrated so the Section 4.3 node-0 occupancies match the
     *  paper's 82% PP / 68% memory). */
    Cycles memBusy = 20;
    /** Cold-miss penalty charged on a handler's first invocation (MIC). */
    Cycles micColdMiss = 20;

    // ---- Table 3.1 queue and buffer limits ------------------------------
    int netInQueue = 16;
    int netOutQueue = 16;
    int memQueue = 1;
    int inboxToPpQueue = 1;
    int piOutQueue = 1;
    int piInQueue = 16;
    int dataBuffers = 16;

    // ---- MDC geometry (Section 5.2) --------------------------------------
    std::uint32_t mdcBytes = 64 * 1024;
    std::uint32_t mdcAssoc = 2;
    std::uint32_t mdcLineBytes = 128;

    /** NACKed requests retry after this backoff (not in the paper). */
    Cycles nackRetryBackoff = 16;

    /**
     * Transaction-level timeout/retry (recoverable-fault transport).
     * When nonzero, every outstanding cache miss arms a timer; if no
     * reply (fill or NACK) arrives within the timeout, the request is
     * re-issued from the processor side, with the timeout doubling per
     * retry up to a 16x cap. 0 disables the timer entirely — the
     * default, since a loss-free fabric never needs it.
     */
    Cycles txnRetryTimeout = 0;
    /** Retries allowed before the transaction completes *degraded*
     *  (structured report + distinct exit code, not an abort). */
    std::uint32_t txnRetryBudget = 8;

    /** log2(page size), for the per-page access monitoring that backs
     *  the Section 4.4 hot-spot detection (set by the machine). */
    unsigned pageShift = 12;
    /** Count per-page remote accesses at the home node (the kind of
     *  performance monitoring the paper cites as a flexibility win;
     *  costs a couple of PP cycles per monitored handler). */
    bool monitorPages = false;
    /** Extra PP cycles per monitored request. */
    Cycles monitorCost = 2;

    /** Verification layer (oracle / watchdog / fault injection); all
     *  off by default, see verify/params.hh. */
    verify::VerifyParams verify;

    Cycles
    piOut() const
    {
        return ideal ? piOutboundIdeal : piOutbound;
    }
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_PARAMS_HH_
