# Empty compiler generated dependencies file for bench_fetchop.
# This may be replaced when dependencies are built.
