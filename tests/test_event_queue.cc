/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace flashsim
{
namespace
{

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<Tick> at;
    eq.schedule(10, [&] {
        at.push_back(eq.now());
        eq.schedule(5, [&] { at.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(at, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    Tick seen = 999;
    eq.schedule(7, [&] { eq.schedule(0, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(100, [&] { ++ran; });
    std::uint64_t n = eq.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] { ++ran; });
    eq.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
    });
    eq.run();
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    eq.run();
    EXPECT_EQ(ran, 0);
}

TEST(EventQueue, FifoPreservedAcrossHeapReordering)
{
    // Scrambled submission times with several same-tick groups: the
    // heap must still run ticks in order and same-tick events FIFO
    // (this pins the std::pop_heap-based pop, which replaced the
    // const_cast move out of priority_queue::top()).
    EventQueue eq;
    std::vector<int> order;
    const Cycles ticks[] = {5, 1, 5, 3, 1, 5, 3, 1};
    for (int i = 0; i < 8; ++i)
        eq.schedule(ticks[i], [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 4, 7, 3, 6, 0, 2, 5}));
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i)
        eq.schedule(static_cast<Cycles>((i * 7919) % 1000), [&] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
        });
    eq.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace flashsim
