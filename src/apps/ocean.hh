/**
 * @file
 * Ocean: regular-grid iterative red-black relaxation (Table 3.5:
 * 258x258 grids, 25 grids).
 *
 * The grid is partitioned into square subgrids, each allocated in its
 * owner's local memory (the SPLASH-2 4-D array layout). Sweeps are
 * near-neighbor 5-point stencils: interior points are local (51.7% of
 * misses are local clean in Table 4.1 — cold and capacity), and the
 * subgrid boundary rows/columns are fetched from the four neighbors'
 * caches (remote dirty at home, 37.8%). Several auxiliary grids model
 * the multigrid solver's footprint.
 */

#ifndef FLASHSIM_APPS_OCEAN_HH_
#define FLASHSIM_APPS_OCEAN_HH_

#include "apps/workload.hh"

namespace flashsim::apps
{

struct OceanParams
{
    int n = 130;   ///< grid side including boundary (paper: 258)
    int iters = 6; ///< red/black iteration pairs
    int grids = 12; ///< auxiliary grids contributing footprint (paper: 25)
    std::uint64_t instrsPerPoint = 44; ///< stencil flops per point

    static OceanParams
    paper()
    {
        OceanParams p;
        p.n = 258;
        p.grids = 25;
        p.iters = 6;
        return p;
    }
};

class Ocean : public Workload
{
  public:
    explicit Ocean(OceanParams params = {}) : p_(params) {}

    std::string name() const override { return "ocean"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    /** Address of point (r, c) of grid g (owner-block layout). */
    Addr elem(int g, int r, int c) const;

    OceanParams p_;
    int nprocs_ = 0;
    int procSide_ = 0;
    int sub_ = 0; ///< interior points per subgrid side
    std::vector<Addr> base_; ///< [grid][proc] subgrid base
    tango::BarrierVar bar_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_OCEAN_HH_
