# Empty dependencies file for flashsim_cli.
# This may be replaced when dependencies are built.
