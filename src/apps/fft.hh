/**
 * @file
 * FFT: radix-sqrt(N) six-step 1-D FFT (Table 3.5: 64K complex points).
 *
 * The N points live in a sqrt(N) x sqrt(N) matrix of 16-byte complex
 * values, row blocks distributed across the node memories. Each
 * processor FFTs its own rows (local, compute-heavy), then the matrix
 * is transposed (every processor reads columns out of every other
 * processor's freshly-written rows — the misses are predominantly
 * "remote, dirty in the home node's cache", which is why the paper's
 * Table 4.1 shows 62% of FFT misses in that class).
 */

#ifndef FLASHSIM_APPS_FFT_HH_
#define FLASHSIM_APPS_FFT_HH_

#include "apps/workload.hh"

namespace flashsim::apps
{

struct FftParams
{
    int logN = 14;  ///< log2 of total complex points (paper: 16)
    /** Compute instructions per point per butterfly pass. */
    std::uint64_t instrsPerPoint = 60;
    /** Butterfly passes per 1-D FFT phase (radix-sqrt(N) FFTs make
     *  several passes over each row; this is what turns the row data
     *  into local capacity misses when the cache is small). */
    int passesPerFft = 3;

    static FftParams
    paper()
    {
        FftParams p;
        p.logN = 16; // 64K complex points
        return p;
    }
};

class Fft : public Workload
{
  public:
    explicit Fft(FftParams params = {}) : p_(params) {}

    std::string name() const override { return "fft"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    /** Address of complex element (row, col). */
    Addr elem(int row, int col) const;

    FftParams p_;
    int side_ = 0;         ///< sqrt(N)
    int rowsPerProc_ = 0;
    int nprocs_ = 0;
    std::vector<Addr> aBase_; ///< per-proc row block of matrix A
    std::vector<Addr> bBase_; ///< per-proc row block of matrix B
    tango::BarrierVar bar_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_FFT_HH_
